// Live mode: depa detection during execution on the wsrt work-stealing
// runtime, instead of during a serial trace replay.
//
// The timestamp arithmetic is the same as the replay detector's, but it
// runs concurrently: each frame's (path, depth, maxBlock) cursor is
// mutated only by the worker currently executing that frame's code, a
// spawned child's initial timestamp is fixed by its parent before the
// task is published to the deque, and a child's final depths are read by
// the parent only after the join — every edge the algorithm shares state
// across is already a synchronization edge of the runtime. Accesses
// append to the strand's private log (a strand runs on exactly one
// worker, uninterrupted — the lock-free fast path), and at every sync the
// joining worker merges its children's accumulated logs into the parent's
// — the shard merge at sync boundaries.
//
// After the run, the logs are linearized into the canonical serial order
// (SerialLess on strand timestamps — total, because all strands sharing a
// fork path form one serial chain of strictly increasing depths), frames
// are renumbered in canonical enter order, event ordinals are assigned by
// prefix sums, and the same sharded detection phase as replay mode runs
// over the result. That reconstruction is exactly the event stream the
// serial executor would have produced for the same program under
// NoSteals, which is what makes live verdicts byte-identical to the
// serial SP-bags baseline (TestLiveSPBagsParity).
package depa

import (
	"runtime"
	"sort"
	"sync/atomic"
	"time"

	"repro/internal/cilk"
	"repro/internal/core"
	"repro/internal/mem"
	"repro/internal/obs"
	"repro/internal/wsrt"
)

// strand kinds: which serial control event creates the strand. Each
// strand is created by exactly one FrameEnter, FrameReturn or Sync, so
// walking strands in canonical order reconstructs the serial event
// ordinals.
const (
	kindEnter uint8 = iota
	kindResume
	kindSync
)

// liveEntry is one (coalesced) access in a strand's private log.
type liveEntry struct {
	addr  mem.Addr
	count int32
	op    uint8
}

// liveStrand is one strand observed during a live run: its timestamp and
// private access log. Appended to only by the single worker executing
// the strand.
type liveStrand struct {
	ts       Timestamp
	frame    *liveFrame
	kind     uint8
	entries  []liveEntry
	fastHits int64
}

// liveFrame is one Cilk function instantiation on the runtime. Its cursor
// fields mirror the replay detector's frameState; strands accumulates the
// frame's own strands plus — merged in at each join — those of its
// completed children.
type liveFrame struct {
	label       string
	parent      *liveFrame
	spawned     bool
	everSpawned bool

	path        []uint32
	basePathLen int
	depth       int32
	maxBlock    int32

	cur     *liveStrand
	enterTs Timestamp

	strands []*liveStrand
	pending []*liveFrame // spawned children of the open sync block

	finalDepth    int32
	finalMaxBlock int32

	elem int32 // canonical rank, assigned at finalize
	seen bool
}

// LiveDetector runs a bridged workload on a wsrt runtime and detects
// races on the fly. Create one per run; Report finalizes on first call.
type LiveDetector struct {
	// Shards overrides the detection fan-out (0 = the runtime's worker
	// count). The verdict is identical for every value.
	Shards int
	// Sequential runs detection shards serially (see Detector.Sequential).
	Sequential bool
	// Trace, when set, collects rader_depa_* spans: merge spans on the
	// worker's lane during the run, shard spans during finalize.
	Trace *obs.Trace

	workers    int
	root       *liveFrame
	syncMerges atomic.Int64

	lin       core.Lineage
	report    core.Report
	counts    obs.EventCounts
	stats     ParallelStats
	finalized bool
	times     []time.Duration
}

// NewLive returns a fresh live detector.
func NewLive() *LiveDetector { return &LiveDetector{} }

// Name implements core.Detector.
func (d *LiveDetector) Name() string { return "depa" }

// LCtx is the live-mode BCtx: it couples a wsrt task context with the
// depa frame it is executing.
type LCtx struct {
	w *wsrt.Ctx
	d *LiveDetector
	f *liveFrame
}

// Run executes the workload on rt with detection attached and blocks
// until it completes. Panics from the workload (including stream-order
// violations) propagate, as they do under the serial executor.
func (d *LiveDetector) Run(rt *wsrt.Runtime, workload func(BCtx)) {
	d.workers = rt.Workers()
	root := &liveFrame{label: "main"}
	d.root = root
	span := d.Trace.Start("rader_depa_live")
	rt.Run(func(wc *wsrt.Ctx) {
		c := &LCtx{w: wc, d: d, f: root}
		newLiveStrand(root, kindEnter)
		workload(c)
		c.finishFrame()
	})
	span.Arg("workers", d.workers).End()
}

// newLiveStrand registers the frame's current cursor as a fresh strand.
func newLiveStrand(f *liveFrame, kind uint8) {
	s := &liveStrand{ts: pack(f.path, f.depth), frame: f, kind: kind}
	if kind == kindEnter {
		f.enterTs = s.ts
	}
	f.cur = s
	f.strands = append(f.strands, s)
}

// finishFrame performs the frame's exit protocol: the implicit sync of a
// Cilk function that ever spawned, then sealing the final depths the
// parent folds in at its join.
func (c *LCtx) finishFrame() {
	if c.f.everSpawned {
		c.Sync()
	}
	c.f.finalDepth = c.f.depth
	c.f.finalMaxBlock = c.f.maxBlock
}

// Spawn implements BCtx. The child's initial timestamp descends the
// branch-0 side of a fork at the parent's depth; the parent immediately
// advances to the continuation strand — in serial replay that strand is
// created at the child's FrameReturn, but its timestamp depends only on
// the fork, so help-first execution computes it identically.
func (c *LCtx) Spawn(label string, body func(BCtx)) {
	f := c.f
	f.everSpawned = true
	d := f.depth
	child := &liveFrame{
		label: label, parent: f, spawned: true,
		path:  append(append(make([]uint32, 0, len(f.path)+1), f.path...), pathEntry(d, branchChild)),
		depth: d + 1,
	}
	child.basePathLen = len(child.path)
	child.maxBlock = child.depth
	newLiveStrand(child, kindEnter)
	f.pending = append(f.pending, child)

	f.path = append(f.path, pathEntry(d, branchCont))
	f.depth = d + 1
	if f.depth > f.maxBlock {
		f.maxBlock = f.depth
	}
	newLiveStrand(f, kindResume)

	det := c.d
	c.w.Spawn(func(wc *wsrt.Ctx) {
		cc := &LCtx{w: wc, d: det, f: child}
		body(cc)
		cc.finishFrame()
	})
}

// Call implements BCtx: the child extends the caller's serial chain on
// the same worker, in its own join scope.
func (c *LCtx) Call(label string, body func(BCtx)) {
	f := c.f
	child := &liveFrame{
		label: label, parent: f,
		path:  append(make([]uint32, 0, len(f.path)), f.path...),
		depth: f.depth + 1,
	}
	child.basePathLen = len(child.path)
	child.maxBlock = child.depth
	newLiveStrand(child, kindEnter)

	c.w.Call(func(wc *wsrt.Ctx) {
		cc := &LCtx{w: wc, d: c.d, f: child}
		body(cc)
		cc.finishFrame()
	})

	f.depth = child.finalDepth + 1
	if child.finalMaxBlock > f.maxBlock {
		f.maxBlock = child.finalMaxBlock
	}
	if f.depth > f.maxBlock {
		f.maxBlock = f.depth
	}
	f.strands = append(f.strands, child.strands...)
	newLiveStrand(f, kindResume)
}

// Sync implements BCtx: it joins the block's children on the runtime,
// folds their final depths into the block maximum, merges their
// accumulated logs into the parent's — the shard merge at the sync
// boundary — and opens the post-sync strand one level below everything
// the block executed.
func (c *LCtx) Sync() {
	f := c.f
	c.w.Sync()
	if n := len(f.pending); n > 0 {
		span := c.d.Trace.StartTID(c.w.Worker()+1, "rader_depa_live_merge")
		for _, ch := range f.pending {
			if ch.finalDepth > f.maxBlock {
				f.maxBlock = ch.finalDepth
			}
			if ch.finalMaxBlock > f.maxBlock {
				f.maxBlock = ch.finalMaxBlock
			}
			f.strands = append(f.strands, ch.strands...)
		}
		c.d.syncMerges.Add(int64(n))
		span.Arg("children", n).End()
		f.pending = f.pending[:0]
	}
	f.path = f.path[:f.basePathLen]
	f.depth = f.maxBlock + 1
	f.maxBlock = f.depth
	newLiveStrand(f, kindSync)
}

// Load implements BCtx.
func (c *LCtx) Load(a mem.Addr) { c.logAccess(a, opLoad) }

// Store implements BCtx.
func (c *LCtx) Store(a mem.Addr) { c.logAccess(a, opStore) }

// logAccess appends to the executing strand's private log, coalescing
// consecutive repeats — strand-private state, so the fast path takes no
// lock and issues no atomic.
func (c *LCtx) logAccess(a mem.Addr, op uint8) {
	s := c.f.cur
	if n := len(s.entries); n > 0 {
		if last := &s.entries[n-1]; last.addr == a && last.op == op {
			last.count++
			s.fastHits++
			return
		}
	}
	s.entries = append(s.entries, liveEntry{addr: a, count: 1, op: op})
}

// Report implements core.Detector: the first call linearizes the logs
// and runs the sharded detection phase.
func (d *LiveDetector) Report() *core.Report {
	d.finalize()
	return &d.report
}

// ParallelStats implements ParallelStatsProvider.
func (d *LiveDetector) ParallelStats() ParallelStats {
	d.finalize()
	return d.stats
}

// EventCounts implements core.EventCountsProvider.
func (d *LiveDetector) EventCounts() obs.EventCounts {
	d.finalize()
	return d.counts
}

// ShardTimes returns per-shard busy times of the detection phase.
func (d *LiveDetector) ShardTimes() []time.Duration {
	d.finalize()
	return d.times
}

// finalize reconstructs the canonical serial stream from the merged logs
// and runs the shared detection phase over it.
func (d *LiveDetector) finalize() {
	if d.finalized {
		return
	}
	d.finalized = true
	if d.root == nil {
		return
	}
	span := d.Trace.Start("rader_depa_live_finalize")
	all := d.root.strands
	sort.Slice(all, func(i, j int) bool { return SerialLess(all[i].ts, all[j].ts) })

	// Frames surface in canonical enter order: a frame's first strand in
	// the sorted sequence is its enter strand (a frame's cursor sequence
	// is strictly increasing), and parents enter before their children.
	var frames []*liveFrame
	for _, s := range all {
		if !s.frame.seen {
			s.frame.seen = true
			frames = append(frames, s.frame)
		}
	}
	for i, f := range frames {
		f.elem = int32(i)
		parent := core.NoParent
		if f.parent != nil {
			parent = f.parent.elem
		}
		d.lin.Add(int32(i), cilk.FrameID(i), f.label, parent)
	}

	// Prefix sums assign the serial event ordinals: each strand accounts
	// for its creating control event plus its accesses.
	strands := make([]strandRec, len(all))
	var entries []entry
	var ord int64
	for i, s := range all {
		strands[i] = strandRec{ts: s.ts, frame: s.frame.elem}
		ord++
		switch s.kind {
		case kindEnter:
			d.counts.FrameEnters++
		case kindResume:
			d.counts.FrameReturns++
		case kindSync:
			d.counts.Syncs++
		}
		for _, le := range s.entries {
			entries = append(entries, entry{
				addr: le.addr, ord: ord + 1, strand: int32(i), count: le.count, op: le.op,
			})
			ord += int64(le.count)
			if le.op == opLoad {
				d.counts.Loads += uint64(le.count)
			} else {
				d.counts.Stores += uint64(le.count)
			}
		}
		d.stats.FastPathHits += s.fastHits
	}
	d.counts.ShadowLookups += 2 * uint64(len(entries))

	shards := d.Shards
	if shards <= 0 {
		shards = d.workers
	}
	if shards <= 0 {
		shards = runtime.GOMAXPROCS(0)
	}
	d.stats.Workers = d.workers
	d.stats.Accesses = int64(d.counts.Loads + d.counts.Stores)
	d.stats.ShardMerges = d.syncMerges.Load() + int64(shards)
	d.times = runDetection(entries, strands, &d.lin, shards, d.Sequential, d.Trace, &d.report)
	span.Arg("strands", len(all)).Arg("entries", len(entries)).End()
}

var (
	_ ParallelStatsProvider = (*LiveDetector)(nil)
	_ BCtx                  = (*LCtx)(nil)
)
