package trace

import (
	"bytes"
	"testing"

	"repro/internal/cilk"
	"repro/internal/mem"
	"repro/internal/progs"
)

// TestReplayStats checks the accounting front doors against the plain
// ones: same event count, byte count matching the stream, and per-class
// counts summing to the total.
func TestReplayStats(t *testing.T) {
	al := mem.NewAllocator()
	data := traceOf(t, progs.Fig1(al, progs.Fig1Options{}), cilk.StealAll{})

	n0, err := ReplayAllBytes(data, cilk.Empty{})
	if err != nil {
		t.Fatal(err)
	}

	var st ReplayStats
	n, err := ReplayAllBytesStats(data, &st, cilk.Empty{})
	if err != nil {
		t.Fatal(err)
	}
	if n != n0 || st.Events != n0 {
		t.Fatalf("events: plain %d, stats front door %d, ReplayStats %d", n0, n, st.Events)
	}
	if st.Bytes != int64(len(data)) {
		t.Fatalf("Bytes = %d, stream is %d bytes", st.Bytes, len(data))
	}
	if st.Frames <= 0 || st.ArenaChunks <= 0 || st.InternedLabels <= 0 {
		t.Fatalf("empty pool accounting: %+v", st)
	}
	var sum int64
	for class, c := range st.Classes {
		if c <= 0 {
			t.Fatalf("class %q has non-positive count %d", class, c)
		}
		sum += c
	}
	if sum != st.Events {
		t.Fatalf("class counts sum to %d, events %d", sum, st.Events)
	}
	for _, want := range []string{"frame-enter-spawn", "frame-return", "sync", "steal", "reducer-read"} {
		if st.Classes[want] == 0 {
			t.Fatalf("fig1 under steal-all decoded no %q events: %v", want, st.Classes)
		}
	}

	// Reader front door agrees with the bytes one.
	var st2 ReplayStats
	n2, err := ReplayAllStats(bytes.NewReader(data), &st2, cilk.Empty{})
	if err != nil {
		t.Fatal(err)
	}
	if n2 != n || st2.Events != st.Events || st2.Bytes != st.Bytes {
		t.Fatalf("reader front door: events %d/%d, bytes %d/%d", n2, n, st2.Bytes, st.Bytes)
	}

	// Nil stats is exactly ReplayAllBytes.
	if n3, err := ReplayAllBytesStats(data, nil, cilk.Empty{}); err != nil || n3 != n {
		t.Fatalf("nil-stats front door: %d events, err %v", n3, err)
	}
}

// A truncated stream still reports what was decoded before the error.
func TestReplayStatsTruncated(t *testing.T) {
	al := mem.NewAllocator()
	data := traceOf(t, progs.Fig1(al, progs.Fig1Options{}), nil)
	cut := data[:len(data)-10]

	var st ReplayStats
	if _, err := ReplayAllBytesStats(cut, &st, cilk.Empty{}); err == nil {
		t.Fatal("truncated stream replayed without error")
	}
	if st.Events == 0 || st.Classes["frame-enter-spawn"] == 0 {
		t.Fatalf("truncated replay reported no accounting: %+v", st)
	}
}
