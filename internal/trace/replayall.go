// Single-pass multi-consumer replay: the fan-out engine behind the
// service's "analyze under everything" path. Replay (trace.go) streams
// from an io.Reader and folds the CRC byte by byte — general, but it pays
// the full decode cost once per consumer when a trace is analysed under
// several detectors. The Replayer in this file decodes an in-memory
// stream exactly once and fans every event out to all registered hooks,
// with a pooled, allocation-free decode loop:
//
//   - frames come from a chunked arena that is reused across replays
//     (chunks never move, so frame pointers stay stable while the table
//     grows);
//   - the frame table is a dense slice indexed by FrameID — the writer
//     assigns IDs in entry order — with a map fallback for adversarial
//     streams;
//   - labels are interned, so a function name that enters a million
//     frames is allocated once, not a million times;
//   - the CRC32C integrity check runs as one bulk pass over the event
//     bytes when the footer is reached, instead of per decoded byte.
//
// In the steady state the decode loop performs zero allocations per
// event (BenchmarkReplayAll and TestReplayAllSteadyStateAllocs pin this
// down), which is what makes the single-pass all-detectors path cheaper
// than even one streaming replay plus decode.
package trace

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"sync"

	"repro/internal/cilk"
	"repro/internal/mem"
	"repro/internal/streamerr"
)

// frameChunk is the arena chunk size. Chunks are allocated whole and kept
// across replays; they are never resliced or copied, so a *cilk.Frame
// handed to a consumer stays valid until the engine's next replay.
const frameChunk = 512

// maxInterned bounds the label intern table so an adversarial stream with
// millions of distinct labels cannot pin memory in a pooled engine.
const maxInterned = 4096

// Replayer is a reusable single-pass replay engine. One Replay call
// decodes an encoded CILKTRACE stream exactly once and feeds every
// registered cilk.Hooks consumer — detectors, the dag recorder, digest
// accounting — in event order, producing behaviour bit-identical to one
// streaming Replay per consumer. The zero value is not ready; use
// NewReplayer (or the pooled ReplayAll/ReplayAllBytes front doors).
//
// A Replayer is not safe for concurrent use, and the *cilk.Frame and
// *cilk.Reducer objects it synthesizes are owned by its arena: they are
// valid until the next Replay call on the same engine. Detector reports
// copy frame IDs and labels out, so verdicts survive engine reuse.
type Replayer struct {
	chunks [][]cilk.Frame // arena; reused across replays
	used   int            // frames handed out this replay

	table    []*cilk.Frame                // dense frame table indexed by FrameID
	overflow map[cilk.FrameID]*cilk.Frame // non-sequential IDs (adversarial streams)
	stack    []*cilk.Frame
	reducers map[int]*cilk.Reducer
	labels   map[string]string // intern table; persists across replays

	scratch []byte // pooled read buffer for ReplayAll's io.Reader front door

	// per-replay decode state
	body    []byte
	off     int
	events  int64
	hooks   cilk.Hooks
	skip    *SkipSet // addresses whose Load/Store events bypass the hooks
	skipped int64    // access events elided by skip this replay

	// classes counts decoded events by kind byte. One unconditional
	// array increment per event — no branch, no allocation — so the
	// accounting is always on and the zero-alloc steady state holds
	// whether or not anyone snapshots it (Stats).
	classes [evMax]int64
}

// NewReplayer returns an empty engine. Engines amortize their arenas
// across replays; hold one per worker (or use the pooled ReplayAll) to
// get the zero-allocation steady state.
func NewReplayer() *Replayer {
	return &Replayer{
		reducers: make(map[int]*cilk.Reducer),
		labels:   make(map[string]string),
	}
}

var replayerPool = sync.Pool{New: func() any { return NewReplayer() }}

// ReplayAll reads r to EOF and replays the stream exactly once into every
// hook, using a pooled engine. It is Replay's single-pass counterpart:
// three detectors cost one decode, not three.
func ReplayAll(r io.Reader, hooks ...cilk.Hooks) (int64, error) {
	rp := replayerPool.Get().(*Replayer)
	defer replayerPool.Put(rp)
	buf := bytes.NewBuffer(rp.scratch[:0])
	if _, err := buf.ReadFrom(r); err != nil {
		return 0, streamerr.Errorf("trace", streamerr.KindTruncated,
			"reading stream: %v", err)
	}
	rp.scratch = buf.Bytes()
	return rp.Replay(rp.scratch, hooks...)
}

// ReplayAllBytes replays an in-memory stream through a pooled engine —
// the zero-copy entry point for callers (like the analysis service) that
// already hold the encoded bytes.
func ReplayAllBytes(data []byte, hooks ...cilk.Hooks) (int64, error) {
	rp := replayerPool.Get().(*Replayer)
	defer replayerPool.Put(rp)
	return rp.Replay(data, hooks...)
}

// reset rewinds the engine for a fresh stream, keeping the arenas and the
// intern table warm.
func (rp *Replayer) reset() {
	rp.used = 0
	rp.table = rp.table[:0]
	if len(rp.overflow) > 0 {
		rp.overflow = nil
	}
	rp.stack = rp.stack[:0]
	for k := range rp.reducers {
		delete(rp.reducers, k)
	}
	rp.off = 0
	rp.events = 0
	rp.skipped = 0
	rp.classes = [evMax]int64{}
}

// newFrame hands out the next arena slot, growing by whole chunks so
// existing frame pointers never move.
func (rp *Replayer) newFrame() *cilk.Frame {
	ci, cj := rp.used/frameChunk, rp.used%frameChunk
	if ci == len(rp.chunks) {
		rp.chunks = append(rp.chunks, make([]cilk.Frame, frameChunk))
	}
	rp.used++
	return &rp.chunks[ci][cj]
}

func (rp *Replayer) insertFrame(f *cilk.Frame) {
	switch fid := f.ID; {
	case fid >= 0 && int(fid) < len(rp.table):
		rp.table[fid] = f
	case fid >= 0 && int(fid) == len(rp.table):
		rp.table = append(rp.table, f)
	default:
		if rp.overflow == nil {
			rp.overflow = make(map[cilk.FrameID]*cilk.Frame)
		}
		rp.overflow[fid] = f
	}
}

func (rp *Replayer) frameOf(id uint64) (*cilk.Frame, error) {
	fid := cilk.FrameID(id)
	if fid >= 0 && int(fid) < len(rp.table) {
		if f := rp.table[fid]; f != nil {
			return f, nil
		}
	} else if f, ok := rp.overflow[fid]; ok {
		return f, nil
	}
	return nil, streamerr.Errorf("trace", streamerr.KindOrder,
		"unknown frame %d", id).WithEvent(rp.events).WithFrame(int64(id)).WithOffset(int64(rp.off))
}

func (rp *Replayer) reducerOf(idx uint64) *cilk.Reducer {
	r, ok := rp.reducers[int(idx)]
	if !ok {
		r = cilk.SyntheticReducer(fmt.Sprintf("reducer#%d", idx), int(idx))
		rp.reducers[int(idx)] = r
	}
	return r
}

func (rp *Replayer) truncated() error {
	return streamerr.Errorf("trace", streamerr.KindTruncated,
		"stream truncated mid-event").WithEvent(rp.events).WithOffset(int64(rp.off))
}

// u decodes one unsigned varint from the current offset.
func (rp *Replayer) u() (uint64, error) {
	v, n := binary.Uvarint(rp.body[rp.off:])
	if n > 0 {
		rp.off += n
		return v, nil
	}
	if n == 0 {
		rp.off = len(rp.body)
		return 0, rp.truncated()
	}
	return 0, streamerr.Errorf("trace", streamerr.KindMalformed,
		"varint overflows 64 bits").WithEvent(rp.events).WithOffset(int64(rp.off))
}

// intern returns a shared string for b, allocating it at most once per
// engine lifetime (bounded by maxInterned distinct labels).
func (rp *Replayer) intern(b []byte) string {
	if s, ok := rp.labels[string(b)]; ok {
		return s
	}
	s := string(b)
	if len(rp.labels) < maxInterned {
		rp.labels[s] = s
	}
	return s
}

// str decodes one length-prefixed label.
func (rp *Replayer) str() (string, error) {
	n, err := rp.u()
	if err != nil {
		return "", err
	}
	if n > 1<<20 {
		return "", streamerr.Errorf("trace", streamerr.KindMalformed,
			"label of %d bytes", n).WithEvent(rp.events).WithOffset(int64(rp.off))
	}
	if uint64(len(rp.body)-rp.off) < n {
		// The streaming replayer's offset counts only fully consumed
		// bytes, so a label cut mid-way reports the position after its
		// length varint; keep rp.off there for identical errors.
		return "", rp.truncated()
	}
	b := rp.body[rp.off : rp.off+int(n)]
	rp.off += int(n)
	return rp.intern(b), nil
}

// Replay decodes data — one full encoded stream, header to footer — and
// drives every hook with the reconstructed events. It accepts the same
// v1/v2 formats as the streaming Replay, synthesizes identical frame and
// reducer metadata, and classifies failures with the same
// *streamerr.Error kinds; the only observable difference is speed. It
// returns the number of events replayed.
func (rp *Replayer) Replay(data []byte, hooks ...cilk.Hooks) (events int64, err error) {
	rp.skip = nil
	return rp.replay(data, hooks...)
}

// ReplaySkip is Replay with an address-range skip set: Load and Store
// events whose address falls in skip are fully decoded and validated —
// the event count, per-class accounting, frame-table checks and footer
// verification are identical to a plain Replay — but never reach the
// hooks. Consumers therefore observe exactly the event sequence a
// FilterAccesses-filtered trace would replay, at full-trace integrity.
func (rp *Replayer) ReplaySkip(data []byte, skip *SkipSet, hooks ...cilk.Hooks) (events int64, err error) {
	rp.skip = skip
	return rp.replay(data, hooks...)
}

func (rp *Replayer) replay(data []byte, hooks ...cilk.Hooks) (events int64, err error) {
	rp.reset()
	rp.hooks = cilk.MultiHooks(hooks...)
	// Contract violations out of a detector (and any other consumer
	// panic) become typed errors, exactly as in the streaming Replay.
	defer func() {
		if p := recover(); p != nil {
			se := streamerr.FromPanic("trace", p)
			if se.Event < 0 {
				se.Event = rp.events
			}
			if se.Offset < 0 {
				se.Offset = int64(rp.off)
			}
			events, err = rp.events, se
		}
	}()

	var v2 bool
	switch {
	case len(data) >= len(Magic) && string(data[:len(Magic)]) == Magic:
		v2 = true
	case len(data) >= len(MagicV1) && string(data[:len(MagicV1)]) == MagicV1:
		v2 = false
	case len(data) == 0:
		return 0, streamerr.Errorf("trace", streamerr.KindTruncated,
			"reading header: %v", io.EOF)
	case len(data) < len(Magic):
		return 0, streamerr.Errorf("trace", streamerr.KindTruncated,
			"reading header: %v", io.ErrUnexpectedEOF)
	default:
		return 0, streamerr.New("trace", streamerr.KindMalformed, "bad magic header")
	}
	rp.body = data[len(Magic):]
	h := rp.hooks

	for {
		offAtRecord := rp.off
		if rp.off >= len(rp.body) {
			if v2 {
				return rp.events, streamerr.Errorf("trace", streamerr.KindTruncated,
					"stream ended without footer").WithEvent(rp.events).WithOffset(int64(rp.off))
			}
			return rp.events, nil
		}
		kb := rp.body[rp.off]
		rp.off++
		if v2 && kb == footerKind {
			if len(rp.body)-offAtRecord < footerLen {
				return rp.events, streamerr.Errorf("trace", streamerr.KindTruncated,
					"stream ended inside footer").WithEvent(rp.events).WithOffset(int64(offAtRecord))
			}
			foot := rp.body[rp.off : rp.off+footerLen-1]
			wantCRC := binary.LittleEndian.Uint32(foot[0:4])
			wantN := binary.LittleEndian.Uint64(foot[4:12])
			// One bulk CRC pass over the event bytes replaces the
			// streaming replayer's per-byte folding.
			if got := crc32.Update(0, castagnoli, rp.body[:offAtRecord]); wantCRC != got {
				return rp.events, streamerr.Errorf("trace", streamerr.KindCorrupt,
					"CRC mismatch: footer %08x, stream %08x", wantCRC, got).
					WithEvent(rp.events).WithOffset(int64(offAtRecord))
			}
			if wantN != uint64(rp.events) {
				return rp.events, streamerr.Errorf("trace", streamerr.KindCorrupt,
					"footer records %d events, stream replayed %d", wantN, rp.events).
					WithEvent(rp.events).WithOffset(int64(offAtRecord))
			}
			if offAtRecord+footerLen != len(rp.body) {
				return rp.events, streamerr.New("trace", streamerr.KindCorrupt,
					"trailing data after footer").WithEvent(rp.events).WithOffset(int64(offAtRecord + footerLen))
			}
			return rp.events, nil
		}
		k := kind(kb)
		if k == 0 || k >= evMax {
			return rp.events, streamerr.Errorf("trace", streamerr.KindMalformed,
				"bad event kind %d", kb).WithEvent(rp.events).WithOffset(int64(offAtRecord))
		}
		rp.events++
		rp.classes[k]++
		switch k {
		case evProgramStart:
			// The root frame arrives with the first FrameEnter.
		case evProgramEnd:
			if len(rp.stack) > 0 {
				h.ProgramEnd(rp.stack[0])
			}
		case evFrameEnterSpawn, evFrameEnterCall:
			id, err := rp.u()
			if err != nil {
				return rp.events, err
			}
			label, err := rp.str()
			if err != nil {
				return rp.events, err
			}
			f := rp.newFrame()
			*f = cilk.Frame{ID: cilk.FrameID(id), Label: label, Spawned: k == evFrameEnterSpawn}
			if n := len(rp.stack); n > 0 {
				f.Parent = rp.stack[n-1]
				f.Depth = f.Parent.Depth + 1
			}
			rp.insertFrame(f)
			rp.stack = append(rp.stack, f)
			if len(rp.stack) == 1 {
				h.ProgramStart(f)
			}
			h.FrameEnter(f)
		case evFrameReturn:
			gid, err := rp.u()
			if err != nil {
				return rp.events, err
			}
			fid, err := rp.u()
			if err != nil {
				return rp.events, err
			}
			g, err := rp.frameOf(gid)
			if err != nil {
				return rp.events, err
			}
			f, err := rp.frameOf(fid)
			if err != nil {
				return rp.events, err
			}
			if len(rp.stack) == 0 || rp.stack[len(rp.stack)-1] != g {
				return rp.events, streamerr.Errorf("trace", streamerr.KindOrder,
					"return of %d does not match frame stack", gid).
					WithEvent(rp.events).WithFrame(int64(gid)).WithOffset(int64(offAtRecord))
			}
			rp.stack = rp.stack[:len(rp.stack)-1]
			h.FrameReturn(g, f)
		case evSync:
			id, err := rp.u()
			if err != nil {
				return rp.events, err
			}
			f, err := rp.frameOf(id)
			if err != nil {
				return rp.events, err
			}
			h.Sync(f)
		case evStolen:
			id, err := rp.u()
			if err != nil {
				return rp.events, err
			}
			vid, err := rp.u()
			if err != nil {
				return rp.events, err
			}
			f, err := rp.frameOf(id)
			if err != nil {
				return rp.events, err
			}
			h.ContinuationStolen(f, cilk.ViewID(vid))
		case evReduceStart:
			id, err := rp.u()
			if err != nil {
				return rp.events, err
			}
			keep, err := rp.u()
			if err != nil {
				return rp.events, err
			}
			die, err := rp.u()
			if err != nil {
				return rp.events, err
			}
			f, err := rp.frameOf(id)
			if err != nil {
				return rp.events, err
			}
			h.ReduceStart(f, cilk.ViewID(keep), cilk.ViewID(die))
		case evReduceEnd:
			id, err := rp.u()
			if err != nil {
				return rp.events, err
			}
			f, err := rp.frameOf(id)
			if err != nil {
				return rp.events, err
			}
			h.ReduceEnd(f)
		case evVABegin, evVAEnd:
			id, err := rp.u()
			if err != nil {
				return rp.events, err
			}
			op, err := rp.u()
			if err != nil {
				return rp.events, err
			}
			ridx, err := rp.u()
			if err != nil {
				return rp.events, err
			}
			f, err := rp.frameOf(id)
			if err != nil {
				return rp.events, err
			}
			if op > uint64(cilk.OpReduce) {
				return rp.events, streamerr.Errorf("trace", streamerr.KindMalformed,
					"bad view op %d", op).WithEvent(rp.events).WithOffset(int64(offAtRecord))
			}
			if k == evVABegin {
				h.ViewAwareBegin(f, cilk.ViewOp(op), rp.reducerOf(ridx))
			} else {
				h.ViewAwareEnd(f, cilk.ViewOp(op), rp.reducerOf(ridx))
			}
		case evReducerCreate:
			id, err := rp.u()
			if err != nil {
				return rp.events, err
			}
			ridx, err := rp.u()
			if err != nil {
				return rp.events, err
			}
			name, err := rp.str()
			if err != nil {
				return rp.events, err
			}
			f, err := rp.frameOf(id)
			if err != nil {
				return rp.events, err
			}
			r := cilk.SyntheticReducer(name, int(ridx))
			rp.reducers[int(ridx)] = r
			h.ReducerCreate(f, r)
		case evReducerRead:
			id, err := rp.u()
			if err != nil {
				return rp.events, err
			}
			ridx, err := rp.u()
			if err != nil {
				return rp.events, err
			}
			f, err := rp.frameOf(id)
			if err != nil {
				return rp.events, err
			}
			h.ReducerRead(f, rp.reducerOf(ridx))
		case evLoad, evStore:
			id, err := rp.u()
			if err != nil {
				return rp.events, err
			}
			a, err := rp.u()
			if err != nil {
				return rp.events, err
			}
			f, err := rp.frameOf(id)
			if err != nil {
				return rp.events, err
			}
			// The elision fast path: a skipped access is still decoded,
			// counted and frame-checked above — stream validation and the
			// footer contract are unchanged — it just never reaches the
			// consumers.
			if rp.skip.Contains(mem.Addr(a)) {
				rp.skipped++
				break
			}
			if k == evLoad {
				h.Load(f, mem.Addr(a))
			} else {
				h.Store(f, mem.Addr(a))
			}
		}
	}
}
