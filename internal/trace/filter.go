package trace

import (
	"encoding/binary"
	"hash/crc32"

	"repro/internal/mem"
	"repro/internal/streamerr"
)

// FilterStats accounts for one FilterAccesses pass.
type FilterStats struct {
	OriginalEvents int64 // events in the input stream
	KeptEvents     int64 // events in the output stream
	ElidedEvents   int64 // access events dropped
	ElidedBytes    int64 // encoded bytes those accesses occupied
}

// FilterAccesses rewrites an encoded trace, dropping every Load and
// Store record whose address keep rejects and copying every other
// record byte for byte. The output is a valid stream of the same
// format version: a v2 input gets a fresh footer (CRC32C and event
// count of the kept records); a v1 input stays footerless. Nothing else
// is re-encoded, so replaying the output is indistinguishable from
// replaying the input under a SkipSet of the rejected addresses.
//
// The input's own integrity is verified along the way — footer CRC and
// event count for v2 — so a corrupt or truncated trace fails here with
// the same *streamerr.Error kinds Replay would report rather than
// laundering into a well-formed filtered stream.
func FilterAccesses(data []byte, keep func(a mem.Addr) bool) ([]byte, FilterStats, error) {
	var st FilterStats
	var v2 bool
	switch {
	case len(data) >= len(Magic) && string(data[:len(Magic)]) == Magic:
		v2 = true
	case len(data) >= len(MagicV1) && string(data[:len(MagicV1)]) == MagicV1:
		v2 = false
	default:
		return nil, st, streamerr.New("trace", streamerr.KindMalformed, "bad magic header")
	}
	body := data[len(Magic):]
	out := make([]byte, 0, len(data))
	out = append(out, data[:len(Magic)]...)
	var keptCRC uint32
	off := 0
	truncated := func() error {
		return streamerr.Errorf("trace", streamerr.KindTruncated,
			"stream truncated mid-event").WithEvent(st.OriginalEvents).WithOffset(int64(off))
	}
	// varint advances past one uvarint, returning its value.
	varint := func() (uint64, error) {
		v, n := binary.Uvarint(body[off:])
		if n > 0 {
			off += n
			return v, nil
		}
		if n == 0 {
			off = len(body)
			return 0, truncated()
		}
		return 0, streamerr.Errorf("trace", streamerr.KindMalformed,
			"varint overflows 64 bits").WithEvent(st.OriginalEvents).WithOffset(int64(off))
	}
	for {
		offAtRecord := off
		if off >= len(body) {
			if v2 {
				return nil, st, streamerr.Errorf("trace", streamerr.KindTruncated,
					"stream ended without footer").WithEvent(st.OriginalEvents).WithOffset(int64(off))
			}
			return out, st, nil
		}
		kb := body[off]
		off++
		if v2 && kb == footerKind {
			if len(body)-offAtRecord < footerLen {
				return nil, st, streamerr.Errorf("trace", streamerr.KindTruncated,
					"stream ended inside footer").WithEvent(st.OriginalEvents).WithOffset(int64(offAtRecord))
			}
			foot := body[off : off+footerLen-1]
			wantCRC := binary.LittleEndian.Uint32(foot[0:4])
			wantN := binary.LittleEndian.Uint64(foot[4:12])
			if got := crc32.Update(0, castagnoli, body[:offAtRecord]); wantCRC != got {
				return nil, st, streamerr.Errorf("trace", streamerr.KindCorrupt,
					"CRC mismatch: footer %08x, stream %08x", wantCRC, got).
					WithEvent(st.OriginalEvents).WithOffset(int64(offAtRecord))
			}
			if wantN != uint64(st.OriginalEvents) {
				return nil, st, streamerr.Errorf("trace", streamerr.KindCorrupt,
					"footer records %d events, stream replayed %d", wantN, st.OriginalEvents).
					WithEvent(st.OriginalEvents).WithOffset(int64(offAtRecord))
			}
			if offAtRecord+footerLen != len(body) {
				return nil, st, streamerr.New("trace", streamerr.KindCorrupt,
					"trailing data after footer").WithEvent(st.OriginalEvents).WithOffset(int64(offAtRecord + footerLen))
			}
			var newFoot [footerLen]byte
			newFoot[0] = footerKind
			binary.LittleEndian.PutUint32(newFoot[1:5], keptCRC)
			binary.LittleEndian.PutUint64(newFoot[5:13], uint64(st.KeptEvents))
			return append(out, newFoot[:]...), st, nil
		}
		k := kind(kb)
		if k == 0 || k >= evMax {
			return nil, st, streamerr.Errorf("trace", streamerr.KindMalformed,
				"bad event kind %d", kb).WithEvent(st.OriginalEvents).WithOffset(int64(offAtRecord))
		}
		st.OriginalEvents++
		drop := false
		switch k {
		case evProgramStart, evProgramEnd:
			// kind byte only
		case evFrameEnterSpawn, evFrameEnterCall, evReducerCreate:
			args := 1
			if k == evReducerCreate {
				args = 2
			}
			for i := 0; i < args; i++ {
				if _, err := varint(); err != nil {
					return nil, st, err
				}
			}
			n, err := varint()
			if err != nil {
				return nil, st, err
			}
			if n > 1<<20 {
				return nil, st, streamerr.Errorf("trace", streamerr.KindMalformed,
					"label of %d bytes", n).WithEvent(st.OriginalEvents).WithOffset(int64(off))
			}
			if uint64(len(body)-off) < n {
				return nil, st, truncated()
			}
			off += int(n)
		case evSync, evReduceEnd:
			if _, err := varint(); err != nil {
				return nil, st, err
			}
		case evFrameReturn, evStolen, evReducerRead:
			for i := 0; i < 2; i++ {
				if _, err := varint(); err != nil {
					return nil, st, err
				}
			}
		case evReduceStart, evVABegin, evVAEnd:
			for i := 0; i < 3; i++ {
				if _, err := varint(); err != nil {
					return nil, st, err
				}
			}
		case evLoad, evStore:
			if _, err := varint(); err != nil { // frame ID
				return nil, st, err
			}
			a, err := varint()
			if err != nil {
				return nil, st, err
			}
			drop = !keep(mem.Addr(a))
		}
		rec := body[offAtRecord:off]
		if drop {
			st.ElidedEvents++
			st.ElidedBytes += int64(len(rec))
			continue
		}
		st.KeptEvents++
		keptCRC = crc32.Update(keptCRC, castagnoli, rec)
		out = append(out, rec...)
	}
}
