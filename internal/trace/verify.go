package trace

import (
	"bufio"
	"hash/crc32"
	"io"

	"repro/internal/streamerr"
)

// VerifyIntegrity checks a trace stream's framing and CRC32C footer
// without decoding records and without buffering the stream: it holds at
// most the footer's worth of trailing bytes, so verifying a multi-GB
// trace costs O(1) memory. This is the cheap durability check the
// disk-backed store runs before admitting an uploaded trace — a full
// Replay also validates record structure, but costs a decode pass.
//
// A v2 stream must end in a well-formed footer whose CRC matches the
// event bytes; a v1 stream has no footer and verifies vacuously (any
// truncation of it is indistinguishable from a clean end, exactly the
// weakness the v2 footer exists to fix). Failures surface as
// *streamerr.Error with KindTruncated or KindCorrupt.
func VerifyIntegrity(r io.Reader) error {
	br := bufio.NewReaderSize(r, 64<<10)
	head := make([]byte, len(Magic))
	if _, err := io.ReadFull(br, head); err != nil {
		return streamerr.Errorf("trace", streamerr.KindTruncated,
			"reading header: %v", err)
	}
	switch string(head) {
	case MagicV1:
		_, err := io.Copy(io.Discard, br)
		return err
	case Magic:
	default:
		return streamerr.New("trace", streamerr.KindMalformed, "bad magic header")
	}

	// Stream the body keeping a sliding tail of footerLen bytes: every
	// byte that falls out of the tail is an event byte and enters the
	// CRC; whatever remains at EOF must be the footer itself.
	var (
		crc  uint32
		tail = make([]byte, 0, 2*footerLen)
		buf  = make([]byte, 64<<10)
		off  = int64(len(Magic))
	)
	for {
		n, err := br.Read(buf)
		if n > 0 {
			tail = append(tail, buf[:n]...)
			if spill := len(tail) - footerLen; spill > 0 {
				crc = crc32.Update(crc, castagnoli, tail[:spill])
				off += int64(spill)
				tail = append(tail[:0], tail[spill:]...)
			}
		}
		if err == io.EOF {
			break
		}
		if err != nil {
			return err
		}
	}
	if len(tail) < footerLen {
		return streamerr.Errorf("trace", streamerr.KindTruncated,
			"stream ended without footer").WithOffset(off + int64(len(tail)))
	}
	if tail[0] != footerKind {
		return streamerr.Errorf("trace", streamerr.KindCorrupt,
			"footer kind byte %#02x", tail[0]).WithOffset(off)
	}
	wantCRC := uint32(tail[1]) | uint32(tail[2])<<8 | uint32(tail[3])<<16 | uint32(tail[4])<<24
	if wantCRC != crc {
		return streamerr.Errorf("trace", streamerr.KindCorrupt,
			"CRC mismatch: footer %08x, stream %08x", wantCRC, crc).WithOffset(off)
	}
	return nil
}
