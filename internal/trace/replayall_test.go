package trace

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"testing"

	"repro/internal/cilk"
	"repro/internal/core"
	"repro/internal/mem"
	"repro/internal/peerset"
	"repro/internal/progs"
	"repro/internal/spbags"
	"repro/internal/specgen"
	"repro/internal/spplus"
	"repro/internal/streamerr"
)

// allDets returns fresh instances of the paper's three detectors in
// canonical order.
func allDets() []core.Detector {
	return []core.Detector{peerset.New(), spbags.New(), spplus.New()}
}

// verdict flattens a detector report into one comparable string: the
// summary plus every race rendered in order.
func verdict(rp *core.Report) string {
	s := rp.Summary()
	for _, r := range rp.Races() {
		s += "\n" + r.String()
	}
	return s
}

// checkSeqVsAll replays data three times sequentially (one streaming
// Replay per detector) and once through the single-pass engine, and
// demands bit-identical verdicts and event counts.
func checkSeqVsAll(t *testing.T, name string, data []byte) {
	t.Helper()
	seq := allDets()
	var seqN int64
	for i, d := range seq {
		n, err := Replay(bytes.NewReader(data), d.(cilk.Hooks))
		if err != nil {
			t.Fatalf("%s: sequential replay %d: %v", name, i, err)
		}
		seqN = n
	}
	all := allDets()
	hooks := make([]cilk.Hooks, len(all))
	for i, d := range all {
		hooks[i] = d.(cilk.Hooks)
	}
	n, err := ReplayAllBytes(data, hooks...)
	if err != nil {
		t.Fatalf("%s: single-pass replay: %v", name, err)
	}
	if n != seqN {
		t.Fatalf("%s: single pass replayed %d events, streaming %d", name, n, seqN)
	}
	for i := range seq {
		want, got := verdict(seq[i].Report()), verdict(all[i].Report())
		if want != got {
			t.Fatalf("%s: %s verdicts diverge:\nsequential: %s\nsingle-pass: %s",
				name, seq[i].Name(), want, got)
		}
	}
}

// TestReplayAllBitIdentical drives the single-pass engine over the
// committed fixtures and a grid of programs × schedules and checks every
// detector's verdict against three sequential streaming replays.
func TestReplayAllBitIdentical(t *testing.T) {
	for _, fixture := range []string{
		"../service/testdata/fig1_v2.trace",
		"../service/testdata/fig1_v1.trace",
	} {
		data, err := os.ReadFile(fixture)
		if err != nil {
			t.Fatal(err)
		}
		checkSeqVsAll(t, fixture, data)
	}

	type pc struct {
		name string
		prog func(*cilk.Ctx)
	}
	al1, al2, al3 := mem.NewAllocator(), mem.NewAllocator(), mem.NewAllocator()
	programs := []pc{
		{"fig1", progs.Fig1(al1, progs.Fig1Options{})},
		{"fig1-early", progs.Fig1(al2, progs.Fig1Options{EarlyGetValue: true})},
		{"fig1-fixed", progs.Fig1(al3, progs.Fig1Options{DeepCopy: true})},
		{"fig2", progs.Fig2Reads(1, 9)},
	}
	specs := []struct {
		name string
		spec cilk.StealSpec
	}{
		{"serial", nil},
		{"steal-all", cilk.StealAll{}},
	}
	for _, p := range programs {
		for _, s := range specs {
			data := traceOf(t, p.prog, s.spec)
			checkSeqVsAll(t, p.name+"/"+s.name, data)
		}
	}

	// Random reducer-heavy programs across schedules.
	for seed := int64(1); seed <= 5; seed++ {
		al := mem.NewAllocator()
		prog := progs.Random(al, progs.RandomOpts{Seed: seed, MonoidStores: true, Reads: true})
		spec := progs.RandomSpec{Seed: seed + 9, P: 0.5, Reduce: cilk.ReduceOrder(seed % 3)}
		data := traceOf(t, prog, spec)
		checkSeqVsAll(t, fmt.Sprintf("random-%d", seed), data)
	}
}

// TestReplayAllSweepCorpus records the §7 specification family of the
// Figure 1 program — the corpus a coverage sweep replays — and checks
// single-pass/sequential parity on every member.
func TestReplayAllSweepCorpus(t *testing.T) {
	factory := func() func(*cilk.Ctx) {
		al := mem.NewAllocator()
		return progs.Fig1(al, progs.Fig1Options{})
	}
	profile := specgen.Measure(factory())
	specs := specgen.All(profile)
	if len(specs) == 0 {
		t.Fatal("empty specification family")
	}
	for i, spec := range specs {
		data := traceOf(t, factory(), spec)
		checkSeqVsAll(t, fmt.Sprintf("spec-%d", i), data)
	}
}

// TestReplayAllErrorParity truncates a valid v2 trace at every byte
// position and corrupts it in the classic ways; the single-pass engine
// must fail with the same typed kind, the same message, and the same
// replayed-event count as the streaming replayer, byte for byte.
func TestReplayAllErrorParity(t *testing.T) {
	al := mem.NewAllocator()
	data := traceOf(t, progs.Fig1(al, progs.Fig1Options{}), cilk.StealAll{})

	check := func(name string, stream []byte) {
		t.Helper()
		wantN, wantErr := Replay(bytes.NewReader(stream), spplus.New())
		gotN, gotErr := ReplayAllBytes(stream, spplus.New())
		if wantN != gotN {
			t.Fatalf("%s: events %d (streaming) vs %d (single-pass)", name, wantN, gotN)
		}
		if (wantErr == nil) != (gotErr == nil) {
			t.Fatalf("%s: error %v (streaming) vs %v (single-pass)", name, wantErr, gotErr)
		}
		if wantErr == nil {
			return
		}
		var ws, gs *streamerr.Error
		if !errors.As(wantErr, &ws) || !errors.As(gotErr, &gs) {
			t.Fatalf("%s: untyped error: %v vs %v", name, wantErr, gotErr)
		}
		if ws.Kind != gs.Kind || wantErr.Error() != gotErr.Error() {
			t.Fatalf("%s: errors diverge:\nstreaming:   %v\nsingle-pass: %v", name, wantErr, gotErr)
		}
	}

	for n := 0; n <= len(data); n++ {
		check(fmt.Sprintf("prefix-%d", n), data[:n])
	}

	corrupt := append([]byte(nil), data...)
	corrupt[len(Magic)+4] ^= 0x01
	check("label-bitflip", corrupt)

	badCount := append([]byte(nil), data...)
	badCount[len(badCount)-1] ^= 0x40
	check("count-corrupt", badCount)

	check("trailing", append(append([]byte(nil), data...), 0x00))
	check("bad-magic", []byte("NOTATRACE!!\n"))
	check("bad-kind", append([]byte(Magic), 0xEE))
	check("unknown-frame", append([]byte(Magic), byte(evSync), 42))

	// v1 prefixes: clean event boundaries must stay clean in both engines.
	v1 := toV1(t, data)
	for n := 0; n <= len(v1); n++ {
		check(fmt.Sprintf("v1-prefix-%d", n), v1[:n])
	}
}

// TestReplayAllReaderMatchesBytes checks the io.Reader front door against
// the in-memory one.
func TestReplayAllReaderMatchesBytes(t *testing.T) {
	al := mem.NewAllocator()
	data := traceOf(t, progs.Fig1(al, progs.Fig1Options{}), cilk.StealAll{})
	a, b := spplus.New(), spplus.New()
	na, err := ReplayAll(bytes.NewReader(data), a)
	if err != nil {
		t.Fatal(err)
	}
	nb, err := ReplayAllBytes(data, b)
	if err != nil {
		t.Fatal(err)
	}
	if na != nb || verdict(a.Report()) != verdict(b.Report()) {
		t.Fatalf("front doors diverge: %d/%d events", na, nb)
	}
}

// TestReplayAllConsumerPanic: a hook panic surfaces as the same typed
// consumer error the streaming replayer produces.
func TestReplayAllConsumerPanic(t *testing.T) {
	al := mem.NewAllocator()
	data := traceOf(t, progs.Fig1(al, progs.Fig1Options{}), cilk.StealAll{})
	_, err := ReplayAllBytes(data, panicky{})
	var se *streamerr.Error
	if !errors.As(err, &se) || se.Kind != streamerr.KindConsumer {
		t.Fatalf("got %v, want KindConsumer", err)
	}
	if se.Event < 0 || se.Offset < 0 {
		t.Fatalf("consumer error missing position: %v", se)
	}
}

type panicky struct{ cilk.Empty }

func (panicky) Sync(*cilk.Frame) { panic("detector invariant violated") }

// reducerFreeTrace records a program that touches no reducers, so its
// replay exercises only the arena/intern/varint decode paths.
func reducerFreeTrace(t testing.TB) []byte {
	t.Helper()
	al := mem.NewAllocator()
	x := al.Alloc("x", 8)
	prog := func(c *cilk.Ctx) {
		for i := 0; i < 4; i++ {
			c.Spawn("worker", func(cc *cilk.Ctx) {
				cc.Store(x.At(0))
				cc.Load(x.At(1))
				cc.Call("leaf", func(ccc *cilk.Ctx) { ccc.Store(x.At(2)) })
			})
		}
		c.Sync()
		c.Load(x.At(3))
	}
	var buf bytes.Buffer
	tw := NewWriter(&buf)
	cilk.Run(prog, cilk.Config{Spec: cilk.StealAll{}, Hooks: tw})
	if err := tw.Close(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestReplayAllSteadyStateAllocs pins the tentpole's core claim: once an
// engine is warm, replaying a reducer-free stream performs ZERO
// allocations — no per-event frame churn, no label copies, no buffer
// growth. The CI allocation-regression step runs this test.
func TestReplayAllSteadyStateAllocs(t *testing.T) {
	data := reducerFreeTrace(t)
	rp := NewReplayer()
	for i := 0; i < 2; i++ { // warm the arena, stack, and intern table
		if _, err := rp.Replay(data, cilk.Empty{}); err != nil {
			t.Fatal(err)
		}
	}
	allocs := testing.AllocsPerRun(20, func() {
		if _, err := rp.Replay(data, cilk.Empty{}); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("steady-state decode loop allocates %.2f times per replay, want 0", allocs)
	}
}

// TestReplayAllAmortizedAllocs: streams with reducers allocate only for
// the reducer objects themselves (a handful per replay), so the per-event
// amortized allocation count stays far below one.
func TestReplayAllAmortizedAllocs(t *testing.T) {
	al := mem.NewAllocator()
	data := traceOf(t, progs.Fig1(al, progs.Fig1Options{N: 64}), cilk.StealAll{})
	rp := NewReplayer()
	var events int64
	for i := 0; i < 2; i++ {
		n, err := rp.Replay(data, cilk.Empty{})
		if err != nil {
			t.Fatal(err)
		}
		events = n
	}
	allocs := testing.AllocsPerRun(20, func() {
		if _, err := rp.Replay(data, cilk.Empty{}); err != nil {
			t.Fatal(err)
		}
	})
	perEvent := allocs / float64(events)
	if perEvent > 0.01 {
		t.Fatalf("%.4f allocs/event amortized (%.1f per replay of %d events), want <= 0.01",
			perEvent, allocs, events)
	}
}

// BenchmarkReplayAll compares the three analysis paths the PR's
// BENCH_PR3.json reports: three sequential streaming replays, the
// single-pass engine fanning out to the same three detectors, and the
// bare decode loop. ns/event and allocs/event are reported per
// sub-benchmark.
func BenchmarkReplayAll(b *testing.B) {
	al := mem.NewAllocator()
	data := traceOf(b, progs.Fig1(al, progs.Fig1Options{N: 256}), cilk.StealAll{})
	events := func() int64 {
		n, err := ReplayAllBytes(data, cilk.Empty{})
		if err != nil {
			b.Fatal(err)
		}
		return n
	}()

	b.Run("sequential", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			for _, d := range allDets() {
				if _, err := Replay(bytes.NewReader(data), d.(cilk.Hooks)); err != nil {
					b.Fatal(err)
				}
			}
		}
		b.ReportMetric(float64(b.Elapsed().Nanoseconds())/(float64(b.N)*float64(events)), "ns/event")
	})
	b.Run("all-detectors", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			dets := allDets()
			hooks := make([]cilk.Hooks, len(dets))
			for j, d := range dets {
				hooks[j] = d.(cilk.Hooks)
			}
			if _, err := ReplayAllBytes(data, hooks...); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(b.Elapsed().Nanoseconds())/(float64(b.N)*float64(events)), "ns/event")
	})
	b.Run("decode-loop", func(b *testing.B) {
		rp := NewReplayer()
		if _, err := rp.Replay(data, cilk.Empty{}); err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := rp.Replay(data, cilk.Empty{}); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(b.Elapsed().Nanoseconds())/(float64(b.N)*float64(events)), "ns/event")
	})
}
