// Package trace records the cilk instrumentation event stream to a
// compact binary format and replays it into any cilk.Hooks consumer —
// decoupling program execution from race analysis. A program (plus steal
// specification) is executed once under a trace Writer; the resulting
// trace can then be replayed into Peer-Set, SP-bags, SP+, the dag
// recorder, or all of them, without re-running the program. Replay
// produces bit-identical detector behaviour because the detectors consume
// nothing but this event stream.
//
// Format (version 2): the magic header "CILKTRACE2\n", then one record per
// event — a kind byte followed by kind-specific unsigned varints (frame
// IDs, view IDs, addresses, reducer indices) and, for frame-enter events,
// a length-prefixed label — and finally a 13-byte footer written by Close:
// the footer kind byte, the CRC32C (Castagnoli) of all event bytes, and
// the event count, both little-endian. Typical traces run 2–4 bytes per
// memory access. The footer lets Replay distinguish a clean end of stream
// from a truncation ("ended at event N") and from corruption ("CRC
// mismatch at byte offset B"). Version 1 traces ("CILKTRACE1\n", no
// footer) still replay; for them any EOF at a record boundary is a clean
// end, exactly as before.
//
// Every Replay failure — bad header, undecodable record, truncation,
// integrity failure, a detector contract violation, or a panicking
// consumer — surfaces as a *streamerr.Error carrying the event index,
// byte offset and (for contract violations) the offending frame.
package trace

import (
	"bufio"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"errors"
	"fmt"
	"hash"
	"hash/crc32"
	"io"

	"repro/internal/cilk"
	"repro/internal/mem"
	"repro/internal/streamerr"
)

// Magic identifies a current-version (v2, footered) trace stream.
const Magic = "CILKTRACE2\n"

// MagicV1 identifies a legacy v1 stream: no integrity footer, any EOF at
// a record boundary is a clean end. Replay accepts both; the Writer only
// produces v2.
const MagicV1 = "CILKTRACE1\n"

// kind encodes the event type.
type kind byte

const (
	evProgramStart kind = iota + 1
	evProgramEnd
	evFrameEnterSpawn
	evFrameEnterCall
	evFrameReturn
	evSync
	evStolen
	evReduceStart
	evReduceEnd
	evVABegin
	evVAEnd
	evReducerCreate
	evReducerRead
	evLoad
	evStore
	evMax
)

// footerKind marks the v2 integrity footer; it sits far outside the event
// kind space so a v1 reader (or a corrupted kind byte) cannot mistake it
// for an event.
const footerKind byte = 0x7E

// footerLen is the footer's full size: kind byte + uint32 CRC32C of all
// event bytes + uint64 event count, both little-endian.
const footerLen = 1 + 4 + 8

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Digest is the strong content identity of a trace: the SHA-256 of every
// byte of the encoded stream, header and footer included. Two streams with
// equal digests replay identically under every detector, which is what
// makes the digest usable as a result-cache key (the CRC32C footer guards
// against accidental corruption; the digest addresses content). The Writer
// computes it incrementally alongside the CRC; DigestOf computes it for an
// already-encoded stream and produces the same value.
type Digest [sha256.Size]byte

// String renders the digest as lowercase hex, the form used in cache keys
// and service responses.
func (d Digest) String() string { return hex.EncodeToString(d[:]) }

// DigestOf consumes r to EOF and returns the digest of its bytes. It does
// not validate the stream; pair it with Replay when integrity matters.
func DigestOf(r io.Reader) (Digest, error) {
	h := sha256.New()
	if _, err := io.Copy(h, r); err != nil {
		return Digest{}, err
	}
	var d Digest
	h.Sum(d[:0])
	return d, nil
}

// Writer implements cilk.Hooks and streams events to an io.Writer.
// Check Err (or use Close) after the run: hook signatures cannot return
// errors, so write failures are latched. Close appends the v2 integrity
// footer; a stream that was never Closed replays as truncated.
type Writer struct {
	w      *bufio.Writer
	err    error
	buf    [4 * binary.MaxVarintLen64]byte
	n      int64 // events written
	crc    uint32
	sha    hash.Hash
	closed bool
}

// NewWriter starts a trace on w, emitting the magic header.
func NewWriter(w io.Writer) *Writer {
	tw := &Writer{w: bufio.NewWriter(w), sha: sha256.New()}
	tw.sha.Write([]byte(Magic))
	_, tw.err = tw.w.WriteString(Magic)
	return tw
}

// Err returns the first write error, if any.
func (t *Writer) Err() error { return t.err }

// Events reports how many events were recorded.
func (t *Writer) Events() int64 { return t.n }

// ErrDigestBeforeClose is returned by Digest when the stream has not been
// Closed: before the footer is written (and hashed) the incremental digest
// can never equal DigestOf over the encoded file, so handing it out would
// let a caller cache results under a key no upload will ever match.
var ErrDigestBeforeClose = errors.New("trace: Digest before Close: digest does not cover the footer")

// Digest returns the SHA-256 content digest of the encoded stream —
// header, events and footer. It errors until a successful Close: only
// then does the digest cover the footer and therefore equal DigestOf over
// the file, which is what makes it safe to use as a result-cache key. A
// failed Close (or a latched write error) also surfaces here, so a
// partially-written stream cannot be cached either.
func (t *Writer) Digest() (Digest, error) {
	if !t.closed {
		return Digest{}, ErrDigestBeforeClose
	}
	if t.err != nil {
		return Digest{}, t.err
	}
	var d Digest
	t.sha.Sum(d[:0])
	return d, nil
}

// Close writes the integrity footer, flushes the stream and returns any
// latched error. Only the first Close writes the footer, and the error
// result is idempotent: a failed Close (or a write failure during the run)
// latches its error, and every subsequent Close returns that same error
// rather than nil — so deferred double-closes in upload/record paths can
// never mask a failure.
func (t *Writer) Close() error {
	if t.closed {
		return t.err
	}
	t.closed = true
	if t.err != nil {
		return t.err
	}
	var foot [footerLen]byte
	foot[0] = footerKind
	binary.LittleEndian.PutUint32(foot[1:5], t.crc)
	binary.LittleEndian.PutUint64(foot[5:13], uint64(t.n))
	t.sha.Write(foot[:])
	if _, t.err = t.w.Write(foot[:]); t.err != nil {
		return t.err
	}
	t.err = t.w.Flush()
	return t.err
}

// write sends event bytes downstream, folding them into the running CRC
// and content digest.
func (t *Writer) write(p []byte) {
	if t.err != nil {
		return
	}
	t.crc = crc32.Update(t.crc, castagnoli, p)
	t.sha.Write(p)
	_, t.err = t.w.Write(p)
}

func (t *Writer) emit(k kind, args ...uint64) {
	if t.err != nil {
		return
	}
	t.n++
	t.buf[0] = byte(k)
	n := 1
	for _, a := range args {
		n += binary.PutUvarint(t.buf[n:], a)
	}
	t.write(t.buf[:n])
}

func (t *Writer) emitString(s string) {
	if t.err != nil {
		return
	}
	n := binary.PutUvarint(t.buf[:], uint64(len(s)))
	t.write(t.buf[:n])
	// Route the payload through write() too: it is the single place that
	// folds bytes into the CRC32C and content digest, so the two can never
	// drift apart (Writer.Digest must equal DigestOf over the file).
	t.write([]byte(s))
}

// ProgramStart implements cilk.Hooks.
func (t *Writer) ProgramStart(f *cilk.Frame) { t.emit(evProgramStart) }

// ProgramEnd implements cilk.Hooks.
func (t *Writer) ProgramEnd(f *cilk.Frame) { t.emit(evProgramEnd) }

// FrameEnter implements cilk.Hooks.
func (t *Writer) FrameEnter(f *cilk.Frame) {
	k := evFrameEnterCall
	if f.Spawned {
		k = evFrameEnterSpawn
	}
	t.emit(k, uint64(f.ID))
	t.emitString(f.Label)
}

// FrameReturn implements cilk.Hooks.
func (t *Writer) FrameReturn(g, f *cilk.Frame) { t.emit(evFrameReturn, uint64(g.ID), uint64(f.ID)) }

// Sync implements cilk.Hooks.
func (t *Writer) Sync(f *cilk.Frame) { t.emit(evSync, uint64(f.ID)) }

// ContinuationStolen implements cilk.Hooks.
func (t *Writer) ContinuationStolen(f *cilk.Frame, vid cilk.ViewID) {
	t.emit(evStolen, uint64(f.ID), uint64(vid))
}

// ReduceStart implements cilk.Hooks.
func (t *Writer) ReduceStart(f *cilk.Frame, keep, die cilk.ViewID) {
	t.emit(evReduceStart, uint64(f.ID), uint64(keep), uint64(die))
}

// ReduceEnd implements cilk.Hooks.
func (t *Writer) ReduceEnd(f *cilk.Frame) { t.emit(evReduceEnd, uint64(f.ID)) }

// ViewAwareBegin implements cilk.Hooks.
func (t *Writer) ViewAwareBegin(f *cilk.Frame, op cilk.ViewOp, r *cilk.Reducer) {
	t.emit(evVABegin, uint64(f.ID), uint64(op), uint64(r.Index()))
}

// ViewAwareEnd implements cilk.Hooks.
func (t *Writer) ViewAwareEnd(f *cilk.Frame, op cilk.ViewOp, r *cilk.Reducer) {
	t.emit(evVAEnd, uint64(f.ID), uint64(op), uint64(r.Index()))
}

// ReducerCreate implements cilk.Hooks.
func (t *Writer) ReducerCreate(f *cilk.Frame, r *cilk.Reducer) {
	t.emit(evReducerCreate, uint64(f.ID), uint64(r.Index()))
	t.emitString(r.Name)
}

// ReducerRead implements cilk.Hooks.
func (t *Writer) ReducerRead(f *cilk.Frame, r *cilk.Reducer) {
	t.emit(evReducerRead, uint64(f.ID), uint64(r.Index()))
}

// Load implements cilk.Hooks.
func (t *Writer) Load(f *cilk.Frame, a mem.Addr) { t.emit(evLoad, uint64(f.ID), uint64(a)) }

// Store implements cilk.Hooks.
func (t *Writer) Store(f *cilk.Frame, a mem.Addr) { t.emit(evStore, uint64(f.ID), uint64(a)) }

var _ cilk.Hooks = (*Writer)(nil)

// replayReader tracks the byte offset and running CRC of everything the
// decoder consumes, so failures can name the exact stream position and the
// v2 footer can be verified.
type replayReader struct {
	br  *bufio.Reader
	off int64
	crc uint32
	one [1]byte
}

// ReadByte implements io.ByteReader (binary.ReadUvarint reads through it).
func (r *replayReader) ReadByte() (byte, error) {
	b, err := r.br.ReadByte()
	if err != nil {
		return 0, err
	}
	r.off++
	r.one[0] = b
	r.crc = crc32.Update(r.crc, castagnoli, r.one[:])
	return b, nil
}

func (r *replayReader) full(b []byte) error {
	if _, err := io.ReadFull(r.br, b); err != nil {
		return err
	}
	r.off += int64(len(b))
	r.crc = crc32.Update(r.crc, castagnoli, b)
	return nil
}

// Replay reads a trace from r and drives hooks with the reconstructed
// event stream. Frame and reducer objects are synthesized: frames carry
// ID, label, spawn flag, parent and depth; reducers carry name and index.
// A reducer declared quietly (cilk.NewReducerQuiet) has no creation event
// in the stream, so it replays under the synthetic name "reducer#<idx>";
// detector verdicts are unaffected because reducers are identified by
// object, not name. It returns the number of events replayed.
//
// On failure the returned error is a *streamerr.Error: a truncated v2
// stream reports KindTruncated with the event reached, an integrity
// failure reports KindCorrupt with the byte offset, an undecodable record
// reports KindMalformed, a detector contract violation keeps the
// detector's own error (kind, layer and frame) with the event index
// filled in, and any other consumer panic is wrapped as KindConsumer.
func Replay(r io.Reader, hooks cilk.Hooks) (events int64, err error) {
	rd := &replayReader{br: bufio.NewReader(r)}
	// Detectors validate the event contract with *streamerr.Error panics
	// (a live run can never violate it). A corrupt or adversarial trace
	// can, so convert contract violations — and any other panic a
	// consumer raises — into structured errors here, preserving the
	// original layer, kind and frame.
	defer func() {
		if p := recover(); p != nil {
			se := streamerr.FromPanic("trace", p)
			if se.Event < 0 {
				se.Event = events
			}
			if se.Offset < 0 {
				se.Offset = rd.off
			}
			err = se
		}
	}()
	head := make([]byte, len(Magic))
	if _, err := io.ReadFull(rd.br, head); err != nil {
		return 0, streamerr.Errorf("trace", streamerr.KindTruncated,
			"reading header: %v", err)
	}
	var v2 bool
	switch string(head) {
	case Magic:
		v2 = true
	case MagicV1:
		v2 = false
	default:
		return 0, streamerr.New("trace", streamerr.KindMalformed, "bad magic header")
	}

	frames := make(map[cilk.FrameID]*cilk.Frame)
	reducers := make(map[int]*cilk.Reducer)
	var stack []*cilk.Frame

	// truncated classifies a mid-record decode failure: an EOF is a
	// truncation at the current event; anything else passes through.
	truncated := func(e error) error {
		if errors.Is(e, io.EOF) || errors.Is(e, io.ErrUnexpectedEOF) {
			return streamerr.Errorf("trace", streamerr.KindTruncated,
				"stream truncated mid-event").WithEvent(events).WithOffset(rd.off)
		}
		return e
	}
	u := func() (uint64, error) {
		v, err := binary.ReadUvarint(rd)
		if err != nil {
			return 0, truncated(err)
		}
		return v, nil
	}
	str := func() (string, error) {
		n, err := u()
		if err != nil {
			return "", err
		}
		if n > 1<<20 {
			return "", streamerr.Errorf("trace", streamerr.KindMalformed,
				"label of %d bytes", n).WithEvent(events).WithOffset(rd.off)
		}
		b := make([]byte, n)
		if err := rd.full(b); err != nil {
			return "", truncated(err)
		}
		return string(b), nil
	}
	frameOf := func(id uint64) (*cilk.Frame, error) {
		f, ok := frames[cilk.FrameID(id)]
		if !ok {
			return nil, streamerr.Errorf("trace", streamerr.KindOrder,
				"unknown frame %d", id).WithEvent(events).WithFrame(int64(id)).WithOffset(rd.off)
		}
		return f, nil
	}
	reducerOf := func(idx uint64) *cilk.Reducer {
		r, ok := reducers[int(idx)]
		if !ok {
			r = cilk.SyntheticReducer(fmt.Sprintf("reducer#%d", idx), int(idx))
			reducers[int(idx)] = r
		}
		return r
	}

	for {
		crcAtRecord := rd.crc
		offAtRecord := rd.off
		kb, err := rd.ReadByte()
		if err == io.EOF {
			if v2 {
				return events, streamerr.Errorf("trace", streamerr.KindTruncated,
					"stream ended without footer").WithEvent(events).WithOffset(rd.off)
			}
			return events, nil
		}
		if err != nil {
			return events, err
		}
		if v2 && kb == footerKind {
			var foot [footerLen - 1]byte
			if _, err := io.ReadFull(rd.br, foot[:]); err != nil {
				return events, streamerr.Errorf("trace", streamerr.KindTruncated,
					"stream ended inside footer").WithEvent(events).WithOffset(offAtRecord)
			}
			wantCRC := binary.LittleEndian.Uint32(foot[0:4])
			wantN := binary.LittleEndian.Uint64(foot[4:12])
			if wantCRC != crcAtRecord {
				return events, streamerr.Errorf("trace", streamerr.KindCorrupt,
					"CRC mismatch: footer %08x, stream %08x", wantCRC, crcAtRecord).
					WithEvent(events).WithOffset(offAtRecord)
			}
			if wantN != uint64(events) {
				return events, streamerr.Errorf("trace", streamerr.KindCorrupt,
					"footer records %d events, stream replayed %d", wantN, events).
					WithEvent(events).WithOffset(offAtRecord)
			}
			if _, err := rd.br.ReadByte(); err != io.EOF {
				return events, streamerr.New("trace", streamerr.KindCorrupt,
					"trailing data after footer").WithEvent(events).WithOffset(offAtRecord + footerLen)
			}
			return events, nil
		}
		k := kind(kb)
		if k == 0 || k >= evMax {
			return events, streamerr.Errorf("trace", streamerr.KindMalformed,
				"bad event kind %d", kb).WithEvent(events).WithOffset(offAtRecord)
		}
		events++
		switch k {
		case evProgramStart:
			// The root frame arrives with the first FrameEnter; the
			// executor emits ProgramStart immediately before it.
		case evProgramEnd:
			if len(stack) > 0 {
				hooks.ProgramEnd(stack[0])
			}
		case evFrameEnterSpawn, evFrameEnterCall:
			id, err := u()
			if err != nil {
				return events, err
			}
			label, err := str()
			if err != nil {
				return events, err
			}
			f := &cilk.Frame{ID: cilk.FrameID(id), Label: label, Spawned: k == evFrameEnterSpawn}
			if len(stack) > 0 {
				f.Parent = stack[len(stack)-1]
				f.Depth = f.Parent.Depth + 1
			}
			frames[f.ID] = f
			stack = append(stack, f)
			if len(stack) == 1 {
				hooks.ProgramStart(f)
			}
			hooks.FrameEnter(f)
		case evFrameReturn:
			gid, err := u()
			if err != nil {
				return events, err
			}
			fid, err := u()
			if err != nil {
				return events, err
			}
			g, err := frameOf(gid)
			if err != nil {
				return events, err
			}
			f, err := frameOf(fid)
			if err != nil {
				return events, err
			}
			if len(stack) == 0 || stack[len(stack)-1] != g {
				return events, streamerr.Errorf("trace", streamerr.KindOrder,
					"return of %d does not match frame stack", gid).
					WithEvent(events).WithFrame(int64(gid)).WithOffset(offAtRecord)
			}
			stack = stack[:len(stack)-1]
			hooks.FrameReturn(g, f)
		case evSync:
			id, err := u()
			if err != nil {
				return events, err
			}
			f, err := frameOf(id)
			if err != nil {
				return events, err
			}
			hooks.Sync(f)
		case evStolen:
			id, err := u()
			if err != nil {
				return events, err
			}
			vid, err := u()
			if err != nil {
				return events, err
			}
			f, err := frameOf(id)
			if err != nil {
				return events, err
			}
			hooks.ContinuationStolen(f, cilk.ViewID(vid))
		case evReduceStart:
			id, err := u()
			if err != nil {
				return events, err
			}
			keep, err := u()
			if err != nil {
				return events, err
			}
			die, err := u()
			if err != nil {
				return events, err
			}
			f, err := frameOf(id)
			if err != nil {
				return events, err
			}
			hooks.ReduceStart(f, cilk.ViewID(keep), cilk.ViewID(die))
		case evReduceEnd:
			id, err := u()
			if err != nil {
				return events, err
			}
			f, err := frameOf(id)
			if err != nil {
				return events, err
			}
			hooks.ReduceEnd(f)
		case evVABegin, evVAEnd:
			id, err := u()
			if err != nil {
				return events, err
			}
			op, err := u()
			if err != nil {
				return events, err
			}
			ridx, err := u()
			if err != nil {
				return events, err
			}
			f, err := frameOf(id)
			if err != nil {
				return events, err
			}
			if op > uint64(cilk.OpReduce) {
				return events, streamerr.Errorf("trace", streamerr.KindMalformed,
					"bad view op %d", op).WithEvent(events).WithOffset(offAtRecord)
			}
			if k == evVABegin {
				hooks.ViewAwareBegin(f, cilk.ViewOp(op), reducerOf(ridx))
			} else {
				hooks.ViewAwareEnd(f, cilk.ViewOp(op), reducerOf(ridx))
			}
		case evReducerCreate:
			id, err := u()
			if err != nil {
				return events, err
			}
			ridx, err := u()
			if err != nil {
				return events, err
			}
			name, err := str()
			if err != nil {
				return events, err
			}
			f, err := frameOf(id)
			if err != nil {
				return events, err
			}
			r := cilk.SyntheticReducer(name, int(ridx))
			reducers[int(ridx)] = r
			hooks.ReducerCreate(f, r)
		case evReducerRead:
			id, err := u()
			if err != nil {
				return events, err
			}
			ridx, err := u()
			if err != nil {
				return events, err
			}
			f, err := frameOf(id)
			if err != nil {
				return events, err
			}
			hooks.ReducerRead(f, reducerOf(ridx))
		case evLoad, evStore:
			id, err := u()
			if err != nil {
				return events, err
			}
			a, err := u()
			if err != nil {
				return events, err
			}
			f, err := frameOf(id)
			if err != nil {
				return events, err
			}
			if k == evLoad {
				hooks.Load(f, mem.Addr(a))
			} else {
				hooks.Store(f, mem.Addr(a))
			}
		}
	}
}
