// Package trace records the cilk instrumentation event stream to a
// compact binary format and replays it into any cilk.Hooks consumer —
// decoupling program execution from race analysis. A program (plus steal
// specification) is executed once under a trace Writer; the resulting
// trace can then be replayed into Peer-Set, SP-bags, SP+, the dag
// recorder, or all of them, without re-running the program. Replay
// produces bit-identical detector behaviour because the detectors consume
// nothing but this event stream.
//
// Format: the magic header "CILKTRACE1\n", then one record per event — a
// kind byte followed by kind-specific unsigned varints (frame IDs, view
// IDs, addresses, reducer indices) and, for frame-enter events, a
// length-prefixed label. Typical traces run 2–4 bytes per memory access.
package trace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"repro/internal/cilk"
	"repro/internal/mem"
)

// Magic identifies a trace stream.
const Magic = "CILKTRACE1\n"

// kind encodes the event type.
type kind byte

const (
	evProgramStart kind = iota + 1
	evProgramEnd
	evFrameEnterSpawn
	evFrameEnterCall
	evFrameReturn
	evSync
	evStolen
	evReduceStart
	evReduceEnd
	evVABegin
	evVAEnd
	evReducerCreate
	evReducerRead
	evLoad
	evStore
	evMax
)

// Writer implements cilk.Hooks and streams events to an io.Writer.
// Check Err (or use Close) after the run: hook signatures cannot return
// errors, so write failures are latched.
type Writer struct {
	w   *bufio.Writer
	err error
	buf [2 * binary.MaxVarintLen64]byte
	n   int64 // events written
}

// NewWriter starts a trace on w, emitting the magic header.
func NewWriter(w io.Writer) *Writer {
	tw := &Writer{w: bufio.NewWriter(w)}
	_, tw.err = tw.w.WriteString(Magic)
	return tw
}

// Err returns the first write error, if any.
func (t *Writer) Err() error { return t.err }

// Events reports how many events were recorded.
func (t *Writer) Events() int64 { return t.n }

// Close flushes the stream and returns any latched error.
func (t *Writer) Close() error {
	if t.err != nil {
		return t.err
	}
	return t.w.Flush()
}

func (t *Writer) emit(k kind, args ...uint64) {
	if t.err != nil {
		return
	}
	t.n++
	if t.err = t.w.WriteByte(byte(k)); t.err != nil {
		return
	}
	for _, a := range args {
		n := binary.PutUvarint(t.buf[:], a)
		if _, t.err = t.w.Write(t.buf[:n]); t.err != nil {
			return
		}
	}
}

func (t *Writer) emitString(s string) {
	if t.err != nil {
		return
	}
	n := binary.PutUvarint(t.buf[:], uint64(len(s)))
	if _, t.err = t.w.Write(t.buf[:n]); t.err != nil {
		return
	}
	_, t.err = t.w.WriteString(s)
}

// ProgramStart implements cilk.Hooks.
func (t *Writer) ProgramStart(f *cilk.Frame) { t.emit(evProgramStart) }

// ProgramEnd implements cilk.Hooks.
func (t *Writer) ProgramEnd(f *cilk.Frame) { t.emit(evProgramEnd) }

// FrameEnter implements cilk.Hooks.
func (t *Writer) FrameEnter(f *cilk.Frame) {
	k := evFrameEnterCall
	if f.Spawned {
		k = evFrameEnterSpawn
	}
	t.emit(k, uint64(f.ID))
	t.emitString(f.Label)
}

// FrameReturn implements cilk.Hooks.
func (t *Writer) FrameReturn(g, f *cilk.Frame) { t.emit(evFrameReturn, uint64(g.ID), uint64(f.ID)) }

// Sync implements cilk.Hooks.
func (t *Writer) Sync(f *cilk.Frame) { t.emit(evSync, uint64(f.ID)) }

// ContinuationStolen implements cilk.Hooks.
func (t *Writer) ContinuationStolen(f *cilk.Frame, vid cilk.ViewID) {
	t.emit(evStolen, uint64(f.ID), uint64(vid))
}

// ReduceStart implements cilk.Hooks.
func (t *Writer) ReduceStart(f *cilk.Frame, keep, die cilk.ViewID) {
	t.emit(evReduceStart, uint64(f.ID), uint64(keep), uint64(die))
}

// ReduceEnd implements cilk.Hooks.
func (t *Writer) ReduceEnd(f *cilk.Frame) { t.emit(evReduceEnd, uint64(f.ID)) }

// ViewAwareBegin implements cilk.Hooks.
func (t *Writer) ViewAwareBegin(f *cilk.Frame, op cilk.ViewOp, r *cilk.Reducer) {
	t.emit(evVABegin, uint64(f.ID), uint64(op), uint64(r.Index()))
}

// ViewAwareEnd implements cilk.Hooks.
func (t *Writer) ViewAwareEnd(f *cilk.Frame, op cilk.ViewOp, r *cilk.Reducer) {
	t.emit(evVAEnd, uint64(f.ID), uint64(op), uint64(r.Index()))
}

// ReducerCreate implements cilk.Hooks.
func (t *Writer) ReducerCreate(f *cilk.Frame, r *cilk.Reducer) {
	t.emit(evReducerCreate, uint64(f.ID), uint64(r.Index()))
	t.emitString(r.Name)
}

// ReducerRead implements cilk.Hooks.
func (t *Writer) ReducerRead(f *cilk.Frame, r *cilk.Reducer) {
	t.emit(evReducerRead, uint64(f.ID), uint64(r.Index()))
}

// Load implements cilk.Hooks.
func (t *Writer) Load(f *cilk.Frame, a mem.Addr) { t.emit(evLoad, uint64(f.ID), uint64(a)) }

// Store implements cilk.Hooks.
func (t *Writer) Store(f *cilk.Frame, a mem.Addr) { t.emit(evStore, uint64(f.ID), uint64(a)) }

var _ cilk.Hooks = (*Writer)(nil)

// Replay reads a trace from r and drives hooks with the reconstructed
// event stream. Frame and reducer objects are synthesized: frames carry
// ID, label, spawn flag, parent and depth; reducers carry name and index.
// A reducer declared quietly (cilk.NewReducerQuiet) has no creation event
// in the stream, so it replays under the synthetic name "reducer#<idx>";
// detector verdicts are unaffected because reducers are identified by
// object, not name. It returns the number of events replayed.
func Replay(r io.Reader, hooks cilk.Hooks) (events int64, err error) {
	// Detectors validate the executor's event contract with panics (a
	// live run can never violate it). A corrupt or adversarial trace can,
	// so convert contract violations into errors here.
	defer func() {
		if p := recover(); p != nil {
			err = fmt.Errorf("trace: invalid event sequence at event %d: %v", events, p)
		}
	}()
	br := bufio.NewReader(r)
	head := make([]byte, len(Magic))
	if _, err := io.ReadFull(br, head); err != nil {
		return 0, fmt.Errorf("trace: reading header: %w", err)
	}
	if string(head) != Magic {
		return 0, errors.New("trace: bad magic header")
	}

	frames := make(map[cilk.FrameID]*cilk.Frame)
	reducers := make(map[int]*cilk.Reducer)
	var stack []*cilk.Frame

	u := func() (uint64, error) { return binary.ReadUvarint(br) }
	str := func() (string, error) {
		n, err := u()
		if err != nil {
			return "", err
		}
		if n > 1<<20 {
			return "", fmt.Errorf("trace: label of %d bytes", n)
		}
		b := make([]byte, n)
		if _, err := io.ReadFull(br, b); err != nil {
			return "", err
		}
		return string(b), nil
	}
	frameOf := func(id uint64) (*cilk.Frame, error) {
		f, ok := frames[cilk.FrameID(id)]
		if !ok {
			return nil, fmt.Errorf("trace: unknown frame %d", id)
		}
		return f, nil
	}
	reducerOf := func(idx uint64) *cilk.Reducer {
		r, ok := reducers[int(idx)]
		if !ok {
			r = cilk.SyntheticReducer(fmt.Sprintf("reducer#%d", idx), int(idx))
			reducers[int(idx)] = r
		}
		return r
	}

	for {
		kb, err := br.ReadByte()
		if err == io.EOF {
			return events, nil
		}
		if err != nil {
			return events, err
		}
		k := kind(kb)
		if k == 0 || k >= evMax {
			return events, fmt.Errorf("trace: bad event kind %d at event %d", kb, events)
		}
		events++
		switch k {
		case evProgramStart:
			// The root frame arrives with the first FrameEnter; the
			// executor emits ProgramStart immediately before it.
		case evProgramEnd:
			if len(stack) > 0 {
				hooks.ProgramEnd(stack[0])
			}
		case evFrameEnterSpawn, evFrameEnterCall:
			id, err := u()
			if err != nil {
				return events, err
			}
			label, err := str()
			if err != nil {
				return events, err
			}
			f := &cilk.Frame{ID: cilk.FrameID(id), Label: label, Spawned: k == evFrameEnterSpawn}
			if len(stack) > 0 {
				f.Parent = stack[len(stack)-1]
				f.Depth = f.Parent.Depth + 1
			}
			frames[f.ID] = f
			stack = append(stack, f)
			if len(stack) == 1 {
				hooks.ProgramStart(f)
			}
			hooks.FrameEnter(f)
		case evFrameReturn:
			gid, err := u()
			if err != nil {
				return events, err
			}
			fid, err := u()
			if err != nil {
				return events, err
			}
			g, err := frameOf(gid)
			if err != nil {
				return events, err
			}
			f, err := frameOf(fid)
			if err != nil {
				return events, err
			}
			if len(stack) == 0 || stack[len(stack)-1] != g {
				return events, fmt.Errorf("trace: return of %d does not match frame stack", gid)
			}
			stack = stack[:len(stack)-1]
			hooks.FrameReturn(g, f)
		case evSync:
			id, err := u()
			if err != nil {
				return events, err
			}
			f, err := frameOf(id)
			if err != nil {
				return events, err
			}
			hooks.Sync(f)
		case evStolen:
			id, err := u()
			if err != nil {
				return events, err
			}
			vid, err := u()
			if err != nil {
				return events, err
			}
			f, err := frameOf(id)
			if err != nil {
				return events, err
			}
			hooks.ContinuationStolen(f, cilk.ViewID(vid))
		case evReduceStart:
			id, err := u()
			if err != nil {
				return events, err
			}
			keep, err := u()
			if err != nil {
				return events, err
			}
			die, err := u()
			if err != nil {
				return events, err
			}
			f, err := frameOf(id)
			if err != nil {
				return events, err
			}
			hooks.ReduceStart(f, cilk.ViewID(keep), cilk.ViewID(die))
		case evReduceEnd:
			id, err := u()
			if err != nil {
				return events, err
			}
			f, err := frameOf(id)
			if err != nil {
				return events, err
			}
			hooks.ReduceEnd(f)
		case evVABegin, evVAEnd:
			id, err := u()
			if err != nil {
				return events, err
			}
			op, err := u()
			if err != nil {
				return events, err
			}
			ridx, err := u()
			if err != nil {
				return events, err
			}
			f, err := frameOf(id)
			if err != nil {
				return events, err
			}
			if op > uint64(cilk.OpReduce) {
				return events, fmt.Errorf("trace: bad view op %d", op)
			}
			if k == evVABegin {
				hooks.ViewAwareBegin(f, cilk.ViewOp(op), reducerOf(ridx))
			} else {
				hooks.ViewAwareEnd(f, cilk.ViewOp(op), reducerOf(ridx))
			}
		case evReducerCreate:
			id, err := u()
			if err != nil {
				return events, err
			}
			ridx, err := u()
			if err != nil {
				return events, err
			}
			name, err := str()
			if err != nil {
				return events, err
			}
			f, err := frameOf(id)
			if err != nil {
				return events, err
			}
			r := cilk.SyntheticReducer(name, int(ridx))
			reducers[int(ridx)] = r
			hooks.ReducerCreate(f, r)
		case evReducerRead:
			id, err := u()
			if err != nil {
				return events, err
			}
			ridx, err := u()
			if err != nil {
				return events, err
			}
			f, err := frameOf(id)
			if err != nil {
				return events, err
			}
			hooks.ReducerRead(f, reducerOf(ridx))
		case evLoad, evStore:
			id, err := u()
			if err != nil {
				return events, err
			}
			a, err := u()
			if err != nil {
				return events, err
			}
			f, err := frameOf(id)
			if err != nil {
				return events, err
			}
			if k == evLoad {
				hooks.Load(f, mem.Addr(a))
			} else {
				hooks.Store(f, mem.Addr(a))
			}
		}
	}
}
