package trace

import (
	"bytes"
	"errors"
	"testing"

	"repro/internal/cilk"
	"repro/internal/mem"
	"repro/internal/progs"
	"repro/internal/streamerr"
)

// recordedFig1 returns a closed v2 trace of fig1 under the all-steals
// specification.
func recordedFig1(t *testing.T) []byte {
	t.Helper()
	var buf bytes.Buffer
	w := NewWriter(&buf)
	cilk.Run(progs.Fig1(mem.NewAllocator(), progs.Fig1Options{}),
		cilk.Config{Spec: cilk.StealAll{}, Hooks: w})
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestVerifyIntegrityCleanV2(t *testing.T) {
	data := recordedFig1(t)
	if err := VerifyIntegrity(bytes.NewReader(data)); err != nil {
		t.Fatalf("clean v2 trace must verify: %v", err)
	}
}

func TestVerifyIntegrityTruncation(t *testing.T) {
	data := recordedFig1(t)
	// Every proper prefix of a v2 stream must fail verification: either
	// the footer is missing, or the bytes that remain are not a valid
	// footer for the truncated body.
	for _, cut := range []int{0, 1, len(Magic), len(Magic) + 1, len(data) / 2, len(data) - 1, len(data) - footerLen} {
		if cut >= len(data) {
			continue
		}
		err := VerifyIntegrity(bytes.NewReader(data[:cut]))
		if err == nil {
			t.Fatalf("truncation at %d of %d must fail verification", cut, len(data))
		}
		var se *streamerr.Error
		if !errors.As(err, &se) {
			t.Fatalf("truncation at %d: error must be *streamerr.Error, got %T: %v", cut, err, err)
		}
	}
}

func TestVerifyIntegrityCorruption(t *testing.T) {
	data := recordedFig1(t)
	// Flipping any single event byte breaks the CRC; flipping the footer
	// kind or CRC bytes breaks the footer check. (The footer's trailing
	// event count is only validated by a decoding Replay, not here.)
	for _, at := range []int{len(Magic), len(Magic) + 7, len(data) / 2, len(data) - footerLen, len(data) - footerLen + 2} {
		mut := append([]byte(nil), data...)
		mut[at] ^= 0xFF
		err := VerifyIntegrity(bytes.NewReader(mut))
		if err == nil {
			t.Fatalf("flipped byte at %d must fail verification", at)
		}
		var se *streamerr.Error
		if !errors.As(err, &se) {
			t.Fatalf("flip at %d: error must be *streamerr.Error, got %T: %v", at, err, err)
		}
		if se.Kind != streamerr.KindCorrupt && se.Kind != streamerr.KindTruncated && se.Kind != streamerr.KindMalformed {
			t.Fatalf("flip at %d: unexpected kind %v", at, se.Kind)
		}
	}
}

func TestVerifyIntegrityV1IsVacuous(t *testing.T) {
	// v1 has no footer: the header alone (and any byte soup after it)
	// verifies, because there is nothing to verify against.
	if err := VerifyIntegrity(bytes.NewReader([]byte(MagicV1))); err != nil {
		t.Fatalf("bare v1 header: %v", err)
	}
	if err := VerifyIntegrity(bytes.NewReader(append([]byte(MagicV1), 1, 2, 3))); err != nil {
		t.Fatalf("v1 with body: %v", err)
	}
}

// VerifyIntegrity must agree with Replay's verdict on footer integrity:
// any stream Replay accepts, VerifyIntegrity accepts.
func TestVerifyIntegrityAgreesWithReplay(t *testing.T) {
	data := recordedFig1(t)
	if _, err := ReplayAllBytes(data); err != nil {
		t.Fatalf("replay: %v", err)
	}
	if err := VerifyIntegrity(bytes.NewReader(data)); err != nil {
		t.Fatalf("verify: %v", err)
	}
}
