package trace

import (
	"testing"

	"repro/internal/cilk"
	"repro/internal/core"
	"repro/internal/ehlabel"
	"repro/internal/mem"
	"repro/internal/obs"
	"repro/internal/offsetspan"
	"repro/internal/peerset"
	"repro/internal/progs"
	"repro/internal/spbags"
	"repro/internal/spplus"
)

// TestDetectorProvenanceAndCounts replays the (racy) Figure 1 program
// under every detector and checks that each reported race carries a
// Provenance — a relation plus detector-relative event ordinals — and
// that each detector's event accounting covers the stream it consumed.
func TestDetectorProvenanceAndCounts(t *testing.T) {
	al := mem.NewAllocator()
	data := traceOf(t, progs.Fig1(al, progs.Fig1Options{}), cilk.StealAll{})

	dets := []core.Detector{
		peerset.New(), spbags.New(), spplus.New(), offsetspan.New(), ehlabel.New(),
	}
	hooks := make([]cilk.Hooks, len(dets))
	for i, d := range dets {
		hooks[i] = d.(cilk.Hooks)
	}
	if _, err := ReplayAllBytes(data, hooks...); err != nil {
		t.Fatal(err)
	}

	raced := 0
	for _, d := range dets {
		rep := d.Report()
		for _, r := range rep.Races() {
			raced++
			p := r.Prov
			if p.Relation == "" {
				t.Errorf("%s: race %v has no provenance relation", d.Name(), r)
			}
			if p.SecondEvent <= 0 {
				t.Errorf("%s: race %v has second-event ordinal %d", d.Name(), r, p.SecondEvent)
			}
			if p.FirstEvent < 0 || p.FirstEvent > p.SecondEvent {
				t.Errorf("%s: race %v has first-event ordinal %d outside [0,%d]",
					d.Name(), r, p.FirstEvent, p.SecondEvent)
			}
		}

		ec, ok := d.(core.EventCountsProvider)
		if !ok {
			t.Errorf("%s does not provide event counts", d.Name())
			continue
		}
		counts := ec.EventCounts()
		if counts.FrameEnters == 0 || counts.FrameReturns == 0 || counts.Total() == 0 {
			t.Errorf("%s: empty event accounting %+v", d.Name(), counts)
		}
		if !rep.Empty() && counts.ShadowLookups == 0 {
			t.Errorf("%s: reported races with zero shadow lookups", d.Name())
		}
	}
	if raced == 0 {
		t.Fatal("fig1 under steal-all raced under no detector")
	}

	// The view-aware classes reach only the detector that consumes them.
	spp := dets[2].(*spplus.Detector).EventCounts()
	if spp.Steals == 0 || spp.ViewAwares == 0 {
		t.Errorf("sp+ missed steal/view-aware events: %+v", spp)
	}
	ps := dets[0].(*peerset.Detector).EventCounts()
	if ps.Loads != 0 || ps.Stores != 0 {
		t.Errorf("peer-set counted memory traffic it ignores: %+v", ps)
	}
	var zero obs.EventCounts
	if ps == zero {
		t.Error("peer-set accounting empty")
	}
}
