package trace

import (
	"bytes"
	"io"

	"repro/internal/cilk"
	"repro/internal/streamerr"
)

// ReplayStats is one replay's decode accounting: what the single-pass
// engine consumed and what its pooled resources look like afterwards. It
// is the observability face of the Replayer — the data behind a "replay"
// span in a -profile-out trace and the events-decoded counters of the
// analysis service.
type ReplayStats struct {
	// Events and Bytes are the decoded event count and total encoded
	// stream length (header and footer included).
	Events int64 `json:"events"`
	Bytes  int64 `json:"bytes"`
	// Frames is the number of frame records synthesized; ArenaChunks is
	// the arena footprint backing them (chunks persist across replays on
	// a pooled engine, so this can exceed the current stream's needs).
	Frames      int `json:"frames"`
	ArenaChunks int `json:"arenaChunks"`
	// InternedLabels is the resident label intern table size.
	InternedLabels int `json:"internedLabels"`
	// Classes maps event-class name → decoded count, covering every
	// event kind the format defines.
	Classes map[string]int64 `json:"classes,omitempty"`
	// Skipped is the number of access events the elision skip set kept
	// away from the hooks (ReplaySkip; zero for a plain replay). Skipped
	// events still count in Events and Classes — they were decoded and
	// validated, just not dispatched.
	Skipped int64 `json:"skipped,omitempty"`
}

// classNames labels the event kinds for ReplayStats.Classes.
var classNames = [evMax]string{
	evProgramStart:    "program-start",
	evProgramEnd:      "program-end",
	evFrameEnterSpawn: "frame-enter-spawn",
	evFrameEnterCall:  "frame-enter-call",
	evFrameReturn:     "frame-return",
	evSync:            "sync",
	evStolen:          "steal",
	evReduceStart:     "reduce-start",
	evReduceEnd:       "reduce-end",
	evVABegin:         "view-aware-begin",
	evVAEnd:           "view-aware-end",
	evReducerCreate:   "reducer-create",
	evReducerRead:     "reducer-read",
	evLoad:            "load",
	evStore:           "store",
}

// Stats snapshots the engine's accounting for the most recent Replay
// call. Call before handing a pooled engine back (the front doors below
// do this for their callers).
func (rp *Replayer) Stats() ReplayStats {
	st := ReplayStats{
		Events:         rp.events,
		Bytes:          int64(len(rp.body) + len(Magic)),
		Frames:         rp.used,
		ArenaChunks:    len(rp.chunks),
		InternedLabels: len(rp.labels),
		Classes:        make(map[string]int64),
		Skipped:        rp.skipped,
	}
	for k, n := range rp.classes {
		if n > 0 {
			st.Classes[classNames[k]] = n
		}
	}
	return st
}

// ReplayAllStats is ReplayAll with decode accounting: when stats is
// non-nil it is filled with the replay's ReplayStats (successful or not —
// a truncated stream still reports what was decoded). A nil stats makes
// it exactly ReplayAll.
func ReplayAllStats(r io.Reader, stats *ReplayStats, hooks ...cilk.Hooks) (int64, error) {
	rp := replayerPool.Get().(*Replayer)
	defer replayerPool.Put(rp)
	buf := bytes.NewBuffer(rp.scratch[:0])
	if _, err := buf.ReadFrom(r); err != nil {
		return 0, streamerr.Errorf("trace", streamerr.KindTruncated,
			"reading stream: %v", err)
	}
	rp.scratch = buf.Bytes()
	n, err := rp.Replay(rp.scratch, hooks...)
	if stats != nil {
		*stats = rp.Stats()
	}
	return n, err
}

// ReplayAllBytesStats is ReplayAllBytes with decode accounting, under the
// same contract as ReplayAllStats.
func ReplayAllBytesStats(data []byte, stats *ReplayStats, hooks ...cilk.Hooks) (int64, error) {
	rp := replayerPool.Get().(*Replayer)
	defer replayerPool.Put(rp)
	n, err := rp.Replay(data, hooks...)
	if stats != nil {
		*stats = rp.Stats()
	}
	return n, err
}

// ReplayAllSkip is ReplayAll under an elision skip set: access events
// whose address falls in skip are decoded and validated but never reach
// the hooks (see Replayer.ReplaySkip). A nil stats skips the accounting;
// a nil or empty skip makes it exactly ReplayAllStats.
func ReplayAllSkip(r io.Reader, skip *SkipSet, stats *ReplayStats, hooks ...cilk.Hooks) (int64, error) {
	rp := replayerPool.Get().(*Replayer)
	defer replayerPool.Put(rp)
	buf := bytes.NewBuffer(rp.scratch[:0])
	if _, err := buf.ReadFrom(r); err != nil {
		return 0, streamerr.Errorf("trace", streamerr.KindTruncated,
			"reading stream: %v", err)
	}
	rp.scratch = buf.Bytes()
	n, err := rp.ReplaySkip(rp.scratch, skip, hooks...)
	if stats != nil {
		*stats = rp.Stats()
	}
	return n, err
}

// ReplayAllBytesSkip is ReplayAllBytes under an elision skip set, with
// the same contract as ReplayAllSkip.
func ReplayAllBytesSkip(data []byte, skip *SkipSet, stats *ReplayStats, hooks ...cilk.Hooks) (int64, error) {
	rp := replayerPool.Get().(*Replayer)
	defer replayerPool.Put(rp)
	n, err := rp.ReplaySkip(data, skip, hooks...)
	if stats != nil {
		*stats = rp.Stats()
	}
	return n, err
}
