package trace

import (
	"bytes"
	"fmt"
	"strings"
	"testing"

	"repro/internal/cilk"
	"repro/internal/mem"
	"repro/internal/progs"
	"repro/internal/spplus"
)

// The writer's incremental digest must equal DigestOf over the encoded
// stream — that equivalence is what lets a recording client and the
// analysis service agree on a cache key without a second pass.
func TestWriterDigestMatchesDigestOf(t *testing.T) {
	var buf bytes.Buffer
	tw := NewWriter(&buf)
	al := mem.NewAllocator()
	cilk.Run(progs.Fig1(al, progs.Fig1Options{}), cilk.Config{Spec: cilk.StealAll{}, Hooks: tw})
	if err := tw.Close(); err != nil {
		t.Fatal(err)
	}
	got, err := tw.Digest()
	if err != nil {
		t.Fatal(err)
	}
	want, err := DigestOf(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("writer digest %s != DigestOf %s", got, want)
	}
	if len(got.String()) != 64 {
		t.Fatalf("digest hex should be 64 chars, got %q", got)
	}
}

// Label bytes must flow through the same CRC/digest bookkeeping as every
// other byte of the stream (emitString once bypassed write and kept its
// own copy of that accounting). Property: on label-heavy traces — long,
// varied frame labels, across several shapes — the writer's incremental
// digest equals DigestOf over the written bytes, and the footer CRC the
// writer emitted verifies on replay.
func TestWriterDigestLabelHeavy(t *testing.T) {
	for trial := 0; trial < 8; trial++ {
		var buf bytes.Buffer
		tw := NewWriter(&buf)
		prog := func(c *cilk.Ctx) {
			for i := 0; i < 16; i++ {
				label := fmt.Sprintf("frame-%d-%d-%s", trial, i, strings.Repeat("λ", trial+i%5))
				c.Spawn(label, func(cc *cilk.Ctx) {
					cc.Call(label+"/callee-with-a-deliberately-long-label", func(*cilk.Ctx) {})
				})
			}
			c.Sync()
		}
		cilk.Run(prog, cilk.Config{Spec: cilk.StealAll{}, Hooks: tw})
		if err := tw.Close(); err != nil {
			t.Fatal(err)
		}
		got, err := tw.Digest()
		if err != nil {
			t.Fatal(err)
		}
		want, err := DigestOf(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("trial %d: writer digest %s != DigestOf %s", trial, got, want)
		}
		if _, err := Replay(bytes.NewReader(buf.Bytes()), spplus.New()); err != nil {
			t.Fatalf("trial %d: label-heavy stream failed integrity replay: %v", trial, err)
		}
	}
}

// Identical runs produce identical digests; a different schedule produces a
// different stream and therefore a different digest.
func TestDigestDistinguishesContent(t *testing.T) {
	record := func(spec cilk.StealSpec) Digest {
		var buf bytes.Buffer
		tw := NewWriter(&buf)
		al := mem.NewAllocator()
		cilk.Run(progs.Fig1(al, progs.Fig1Options{}), cilk.Config{Spec: spec, Hooks: tw})
		if err := tw.Close(); err != nil {
			t.Fatal(err)
		}
		d, err := tw.Digest()
		if err != nil {
			t.Fatal(err)
		}
		return d
	}
	a, b := record(nil), record(nil)
	if a != b {
		t.Fatalf("identical runs must digest identically: %s vs %s", a, b)
	}
	c := record(cilk.StealAll{})
	if a == c {
		t.Fatal("different schedules must not collide on the digest")
	}
}

// Digest before Close must refuse: the footer is not hashed yet, so the
// value would never match DigestOf over the file — a service caching under
// it would create entries no upload can ever hit (or worse, collide with a
// differently-footered stream). After Close the digest latches; after a
// failed Close the failure latches too.
func TestDigestBeforeCloseRefuses(t *testing.T) {
	var buf bytes.Buffer
	tw := NewWriter(&buf)
	al := mem.NewAllocator()
	cilk.Run(progs.Fig1(al, progs.Fig1Options{}), cilk.Config{Spec: cilk.StealAll{}, Hooks: tw})
	if _, err := tw.Digest(); err != ErrDigestBeforeClose {
		t.Fatalf("pre-Close Digest error = %v, want ErrDigestBeforeClose", err)
	}
	if err := tw.Close(); err != nil {
		t.Fatal(err)
	}
	d, err := tw.Digest()
	if err != nil {
		t.Fatalf("post-Close Digest: %v", err)
	}
	want, err := DigestOf(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if d != want {
		t.Fatalf("post-Close digest %s != DigestOf %s", d, want)
	}

	// A writer whose Close failed must refuse to produce a digest at all.
	bad := NewWriter(&failWriter{n: 4})
	cilk.Run(progs.Fig2Reads(1), cilk.Config{Hooks: bad})
	if bad.Close() == nil {
		t.Fatal("write failure must surface at Close")
	}
	if _, err := bad.Digest(); err == nil {
		t.Fatal("Digest after a failed Close must carry the latched error")
	}
}

// Equal digests must mean equal replay verdicts: replay the same bytes
// twice and compare detector summaries.
func TestDigestImpliesReplayEquivalence(t *testing.T) {
	var buf bytes.Buffer
	tw := NewWriter(&buf)
	al := mem.NewAllocator()
	cilk.Run(progs.Fig1(al, progs.Fig1Options{}), cilk.Config{Spec: cilk.StealAll{}, Hooks: tw})
	if err := tw.Close(); err != nil {
		t.Fatal(err)
	}
	run := func() string {
		d := spplus.New()
		if _, err := Replay(bytes.NewReader(buf.Bytes()), d); err != nil {
			t.Fatal(err)
		}
		return d.Report().Summary()
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("same digest, different verdicts:\n%s\nvs\n%s", a, b)
	}
}

// A second Close must return the same latched error as the first, not nil
// — the service's upload handler defer-closes unconditionally and must not
// see a failure vanish.
func TestCloseIdempotentError(t *testing.T) {
	tw := NewWriter(&failWriter{n: 4})
	cilk.Run(progs.Fig2Reads(1), cilk.Config{Hooks: tw})
	first := tw.Close()
	if first == nil {
		t.Fatal("write failure must surface at first Close")
	}
	second := tw.Close()
	if second != first {
		t.Fatalf("second Close returned %v, want the latched %v", second, first)
	}
	if third := tw.Close(); third != first {
		t.Fatalf("third Close returned %v, want the latched %v", third, first)
	}
}

// A clean double Close stays clean and writes the footer exactly once.
func TestCloseIdempotentClean(t *testing.T) {
	var buf bytes.Buffer
	tw := NewWriter(&buf)
	cilk.Run(progs.Fig2Reads(1), cilk.Config{Hooks: tw})
	if err := tw.Close(); err != nil {
		t.Fatal(err)
	}
	size := buf.Len()
	if err := tw.Close(); err != nil {
		t.Fatalf("second Close on a healthy stream: %v", err)
	}
	if buf.Len() != size {
		t.Fatalf("second Close grew the stream from %d to %d bytes", size, buf.Len())
	}
	if _, err := Replay(bytes.NewReader(buf.Bytes()), spplus.New()); err != nil {
		t.Fatal(err)
	}
}
