package trace

import (
	"sort"

	"repro/internal/mem"
)

// AddrRange is a closed interval [Lo, Hi] of shadow addresses.
type AddrRange struct {
	Lo, Hi mem.Addr
}

// SkipSet is an immutable set of address ranges the replay engine may
// elide: Load/Store events whose address falls in the set are decoded
// and validated but never dispatched to the hooks. It is the replay-side
// twin of FilterAccesses — replaying a full trace under a SkipSet drives
// the hooks with exactly the event sequence the filtered trace encodes,
// without materializing the filtered bytes. internal/elide builds one
// from its per-address classification.
type SkipSet struct {
	ranges []AddrRange
}

// NewSkipSet builds a set from the given ranges, normalizing them
// (sorted, overlaps and adjacent runs merged) so Contains can binary
// search. Ranges with Hi < Lo are ignored.
func NewSkipSet(ranges []AddrRange) *SkipSet {
	rs := make([]AddrRange, 0, len(ranges))
	for _, r := range ranges {
		if r.Hi >= r.Lo {
			rs = append(rs, r)
		}
	}
	sort.Slice(rs, func(i, j int) bool { return rs[i].Lo < rs[j].Lo })
	merged := rs[:0]
	for _, r := range rs {
		if n := len(merged); n > 0 && r.Lo <= merged[n-1].Hi+1 {
			if r.Hi > merged[n-1].Hi {
				merged[n-1].Hi = r.Hi
			}
			continue
		}
		merged = append(merged, r)
	}
	return &SkipSet{ranges: merged}
}

// SkipSetFromAddrs builds a set from individual addresses, coalescing
// consecutive runs into ranges.
func SkipSetFromAddrs(addrs []mem.Addr) *SkipSet {
	rs := make([]AddrRange, len(addrs))
	for i, a := range addrs {
		rs[i] = AddrRange{Lo: a, Hi: a}
	}
	return NewSkipSet(rs)
}

// Contains reports whether a falls in the set.
func (s *SkipSet) Contains(a mem.Addr) bool {
	if s == nil || len(s.ranges) == 0 {
		return false
	}
	// First range starting after a; the candidate is its predecessor.
	i := sort.Search(len(s.ranges), func(i int) bool { return s.ranges[i].Lo > a })
	return i > 0 && a <= s.ranges[i-1].Hi
}

// Ranges returns the normalized ranges (callers must not mutate).
func (s *SkipSet) Ranges() []AddrRange {
	if s == nil {
		return nil
	}
	return s.ranges
}

// Len is the number of normalized ranges.
func (s *SkipSet) Len() int {
	if s == nil {
		return 0
	}
	return len(s.ranges)
}
