package trace

import (
	"bytes"
	"errors"
	"os"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/cilk"
	"repro/internal/mem"
	"repro/internal/peerset"
	"repro/internal/progs"
	"repro/internal/spplus"
	"repro/internal/streamerr"
)

func TestReplayReproducesSPPlus(t *testing.T) {
	al := mem.NewAllocator()
	prog := progs.Fig1(al, progs.Fig1Options{})

	var buf bytes.Buffer
	tw := NewWriter(&buf)
	live := spplus.New()
	cilk.Run(prog, cilk.Config{Spec: cilk.StealAll{}, Hooks: cilk.Multi{tw, live}})
	if err := tw.Close(); err != nil {
		t.Fatal(err)
	}

	replayed := spplus.New()
	n, err := Replay(bytes.NewReader(buf.Bytes()), replayed)
	if err != nil {
		t.Fatal(err)
	}
	if n != tw.Events() {
		t.Fatalf("replayed %d events, recorded %d", n, tw.Events())
	}
	if live.Report().Summary() != replayed.Report().Summary() {
		t.Fatalf("reports differ:\nlive:    %s\nreplay:  %s",
			live.Report().Summary(), replayed.Report().Summary())
	}
	if replayed.Report().Empty() {
		t.Fatal("the Fig 1 race must survive the round trip")
	}
}

func TestReplayReproducesPeerSet(t *testing.T) {
	var buf bytes.Buffer
	tw := NewWriter(&buf)
	live := peerset.New()
	cilk.Run(progs.Fig2Reads(1, 9), cilk.Config{Hooks: cilk.Multi{tw, live}})
	if err := tw.Close(); err != nil {
		t.Fatal(err)
	}
	replayed := peerset.New()
	if _, err := Replay(bytes.NewReader(buf.Bytes()), replayed); err != nil {
		t.Fatal(err)
	}
	// The fixture's reducer is quiet-declared, so it replays under a
	// synthetic name; verdicts and participants must still match exactly.
	lr, rr := live.Report(), replayed.Report()
	if lr.Distinct() != rr.Distinct() || lr.Total() != rr.Total() || rr.Empty() {
		t.Fatalf("verdicts differ: live %d/%d, replay %d/%d",
			lr.Distinct(), lr.Total(), rr.Distinct(), rr.Total())
	}
	if lr.Races()[0].First.Frame != rr.Races()[0].First.Frame ||
		lr.Races()[0].Second.Frame != rr.Races()[0].Second.Frame {
		t.Fatal("race participants differ across replay")
	}
}

func TestQuickReplayIdenticalOnRandomPrograms(t *testing.T) {
	check := func(seed int64, p8 uint8) bool {
		p := float64(p8%4) / 4
		al := mem.NewAllocator()
		prog := progs.Random(al, progs.RandomOpts{Seed: seed, MonoidStores: true, Reads: true})
		spec := progs.RandomSpec{Seed: seed + 9, P: p, Reduce: cilk.ReduceOrder(seed % 3)}

		var buf bytes.Buffer
		tw := NewWriter(&buf)
		live := spplus.New()
		cilk.Run(prog, cilk.Config{Spec: spec, Hooks: cilk.Multi{tw, live}})
		if tw.Close() != nil {
			return false
		}
		replayed := spplus.New()
		if _, err := Replay(bytes.NewReader(buf.Bytes()), replayed); err != nil {
			t.Logf("seed %d: replay error: %v", seed, err)
			return false
		}
		return live.Report().Summary() == replayed.Report().Summary()
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestTraceCompactness(t *testing.T) {
	al := mem.NewAllocator()
	prog := progs.Fig1(al, progs.Fig1Options{N: 16})
	var buf bytes.Buffer
	tw := NewWriter(&buf)
	cilk.Run(prog, cilk.Config{Spec: cilk.StealAll{}, Hooks: tw})
	if err := tw.Close(); err != nil {
		t.Fatal(err)
	}
	perEvent := float64(buf.Len()) / float64(tw.Events())
	if perEvent > 8 {
		t.Fatalf("%.1f bytes/event — format not compact", perEvent)
	}
}

func TestReplayErrors(t *testing.T) {
	cases := []struct {
		name string
		data []byte
		kind streamerr.Kind
	}{
		{"empty", []byte{}, streamerr.KindTruncated},
		{"bad magic", []byte("NOTATRACE!!\n"), streamerr.KindMalformed},
		{"bad kind", append([]byte(Magic), 0xEE), streamerr.KindMalformed},
		{"truncated", append([]byte(Magic), byte(evLoad)), streamerr.KindTruncated},
		{"unknown frm", append([]byte(Magic), byte(evSync), 42), streamerr.KindOrder},
		{"no footer", []byte(Magic), streamerr.KindTruncated},
	}
	for _, tc := range cases {
		_, err := Replay(bytes.NewReader(tc.data), cilk.Empty{})
		if err == nil {
			t.Errorf("%s: expected error", tc.name)
			continue
		}
		var se *streamerr.Error
		if !errors.As(err, &se) {
			t.Errorf("%s: error %v is not a *streamerr.Error", tc.name, err)
			continue
		}
		if se.Kind != tc.kind {
			t.Errorf("%s: kind = %v, want %v (err: %v)", tc.name, se.Kind, tc.kind, se)
		}
	}
}

// traceOf records prog under spec and returns the complete v2 trace bytes.
func traceOf(t testing.TB, prog func(*cilk.Ctx), spec cilk.StealSpec) []byte {
	t.Helper()
	var buf bytes.Buffer
	tw := NewWriter(&buf)
	cilk.Run(prog, cilk.Config{Spec: spec, Hooks: tw})
	if err := tw.Close(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// toV1 converts a v2 trace to the legacy v1 format: swap the magic and
// strip the 13-byte footer.
func toV1(t *testing.T, data []byte) []byte {
	t.Helper()
	if len(data) < len(Magic)+footerLen || data[len(data)-footerLen] != footerKind {
		t.Fatal("not a complete v2 trace")
	}
	v1 := append([]byte(MagicV1), data[len(Magic):len(data)-footerLen]...)
	return v1
}

func TestReplayV1Compat(t *testing.T) {
	al := mem.NewAllocator()
	data := traceOf(t, progs.Fig1(al, progs.Fig1Options{}), cilk.StealAll{})

	live := spplus.New()
	if _, err := Replay(bytes.NewReader(data), live); err != nil {
		t.Fatal(err)
	}
	v1 := spplus.New()
	n, err := Replay(bytes.NewReader(toV1(t, data)), v1)
	if err != nil {
		t.Fatalf("v1 replay: %v", err)
	}
	if n == 0 || live.Report().Summary() != v1.Report().Summary() {
		t.Fatalf("v1 replay diverged (%d events): v2 %q, v1 %q",
			n, live.Report().Summary(), v1.Report().Summary())
	}
}

func TestReplayDetectsCorruption(t *testing.T) {
	al := mem.NewAllocator()
	data := traceOf(t, progs.Fig1(al, progs.Fig1Options{}), cilk.StealAll{})

	// Flip one bit inside the root frame's label ("main", starting right
	// after magic + ProgramStart + kind + id varint + length varint). The
	// stream stays structurally decodable — only the CRC footer can tell.
	corrupt := append([]byte(nil), data...)
	corrupt[len(Magic)+4] ^= 0x01
	_, err := Replay(bytes.NewReader(corrupt), cilk.Empty{})
	var se *streamerr.Error
	if !errors.As(err, &se) || se.Kind != streamerr.KindCorrupt {
		t.Fatalf("label corruption: got %v, want KindCorrupt", err)
	}
	if se.Offset < 0 {
		t.Fatalf("corruption error carries no byte offset: %v", se)
	}

	// A doctored event count with a matching CRC is impossible to fake by
	// flipping footer bytes (the CRC covers only events), so corrupting the
	// count field alone must also be caught.
	badCount := append([]byte(nil), data...)
	badCount[len(badCount)-1] ^= 0x40
	_, err = Replay(bytes.NewReader(badCount), cilk.Empty{})
	if !errors.As(err, &se) || se.Kind != streamerr.KindCorrupt {
		t.Fatalf("count corruption: got %v, want KindCorrupt", err)
	}

	// Trailing garbage after the footer is corruption, not silently ignored.
	trailing := append(append([]byte(nil), data...), 0x00)
	_, err = Replay(bytes.NewReader(trailing), cilk.Empty{})
	if !errors.As(err, &se) || se.Kind != streamerr.KindCorrupt {
		t.Fatalf("trailing data: got %v, want KindCorrupt", err)
	}
}

func TestReplayTruncationReportsEvent(t *testing.T) {
	data := traceOf(t, progs.Fig2Reads(1, 9), cilk.StealAll{})
	// Cut the stream in half, mid-events.
	cut := data[:len(Magic)+(len(data)-len(Magic))/2]
	n, err := Replay(bytes.NewReader(cut), cilk.Empty{})
	var se *streamerr.Error
	if !errors.As(err, &se) || se.Kind != streamerr.KindTruncated {
		t.Fatalf("got %v, want KindTruncated", err)
	}
	if se.Event != n || n == 0 {
		t.Fatalf("truncation at event %d but error names event %d", n, se.Event)
	}
	if se.Offset < 0 {
		t.Fatalf("truncation error carries no byte offset: %v", se)
	}
}

// TestTruncatedTestdata pins the committed fixture CI replays: it must be
// a deterministically truncated v2 trace yielding a well-formed error.
func TestTruncatedTestdata(t *testing.T) {
	data, err := os.ReadFile("testdata/truncated.trace")
	if err != nil {
		t.Fatal(err)
	}
	_, rerr := Replay(bytes.NewReader(data), spplus.New())
	var se *streamerr.Error
	if !errors.As(rerr, &se) || se.Kind != streamerr.KindTruncated {
		t.Fatalf("fixture replay: got %v, want KindTruncated", rerr)
	}
}

func TestReplayFrameMetadata(t *testing.T) {
	var buf bytes.Buffer
	tw := NewWriter(&buf)
	cilk.Run(func(c *cilk.Ctx) {
		c.Spawn("child", func(cc *cilk.Ctx) {
			cc.Call("leaf", func(*cilk.Ctx) {})
		})
		c.Sync()
	}, cilk.Config{Hooks: tw})
	if err := tw.Close(); err != nil {
		t.Fatal(err)
	}
	var seen []string
	spy := frameSpy{on: func(f *cilk.Frame) {
		seen = append(seen, f.String())
		if f.Label == "leaf" {
			if f.Depth != 2 || f.Spawned || f.Parent == nil || f.Parent.Label != "child" {
				t.Errorf("leaf metadata wrong: %+v", f)
			}
		}
	}}
	if _, err := Replay(bytes.NewReader(buf.Bytes()), spy); err != nil {
		t.Fatal(err)
	}
	if strings.Join(seen, " ") != "main#0 child#1 leaf#2" {
		t.Fatalf("frames = %v", seen)
	}
}

type frameSpy struct {
	cilk.Empty
	on func(*cilk.Frame)
}

func (s frameSpy) FrameEnter(f *cilk.Frame) { s.on(f) }

// FuzzReplay: arbitrary bytes must never panic the replayer.
func FuzzReplay(f *testing.F) {
	var buf bytes.Buffer
	tw := NewWriter(&buf)
	cilk.Run(progs.Fig2Reads(1, 9), cilk.Config{Spec: cilk.StealAll{}, Hooks: tw})
	tw.Close()
	f.Add(buf.Bytes())
	f.Add([]byte(Magic))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		d := spplus.New()
		_, _ = Replay(bytes.NewReader(data), d)
	})
}

// failWriter fails after n bytes, for the latched-error path.
type failWriter struct{ n int }

func (w *failWriter) Write(p []byte) (int, error) {
	if w.n <= 0 {
		return 0, errShort
	}
	take := len(p)
	if take > w.n {
		take = w.n
		w.n = 0
		return take, errShort
	}
	w.n -= take
	return take, nil
}

var errShort = bytes.ErrTooLarge

func TestWriterLatchesErrors(t *testing.T) {
	// The writer buffers, so small failures surface at Close (and large
	// streams latch mid-run once the buffer first flushes); either way
	// Close must report the failure and nothing may panic.
	tw := NewWriter(&failWriter{n: 4}) // fails at the first flush
	cilk.Run(progs.Fig2Reads(1), cilk.Config{Hooks: tw})
	if tw.Close() == nil {
		t.Fatal("write failure must surface at Close")
	}
	// A long run overflows the buffer mid-stream; the error latches and
	// subsequent emits are no-ops.
	tw2 := NewWriter(&failWriter{n: 64})
	al := mem.NewAllocator()
	cilk.Run(progs.Fig1(al, progs.Fig1Options{N: 512}), cilk.Config{Spec: cilk.StealAll{}, Hooks: tw2})
	if tw2.Err() == nil {
		t.Fatal("mid-stream failure must latch during the run")
	}
	if tw2.Close() == nil {
		t.Fatal("Close must report the latched failure")
	}
}

// TestReplayEveryTruncation replays a valid trace truncated at every byte
// position. Under v2 the footer makes truncation detectable: ONLY the
// complete trace replays cleanly; every proper prefix must return a typed
// error — never panic, never pass. The same bytes downgraded to v1 (no
// footer) keep the legacy behaviour: prefixes ending on an event boundary
// replay cleanly.
func TestReplayEveryTruncation(t *testing.T) {
	al := mem.NewAllocator()
	data := traceOf(t, progs.Fig1(al, progs.Fig1Options{}), cilk.StealAll{})

	for n := 0; n < len(data); n++ {
		_, err := Replay(bytes.NewReader(data[:n]), spplus.New())
		if err == nil {
			t.Fatalf("v2 prefix of %d/%d bytes replayed cleanly", n, len(data))
		}
		var se *streamerr.Error
		if !errors.As(err, &se) {
			t.Fatalf("v2 prefix of %d bytes: untyped error %v", n, err)
		}
	}
	if _, err := Replay(bytes.NewReader(data), spplus.New()); err != nil {
		t.Fatalf("full v2 trace must replay cleanly, got %v", err)
	}

	v1 := toV1(t, data)
	clean := 0
	for n := 0; n <= len(v1); n++ {
		if _, err := Replay(bytes.NewReader(v1[:n]), spplus.New()); err == nil {
			clean++
		}
	}
	// Every exact event boundary replays cleanly on v1; mid-event
	// prefixes error out. There must be plenty of both.
	if clean < 10 || clean >= len(v1) {
		t.Fatalf("v1 clean prefixes = %d of %d — truncation handling suspicious", clean, len(v1))
	}
}

// BenchmarkTraceWriteReplay measures the trace pipeline's throughput:
// recording overhead per event and replay-into-SP+ cost.
func BenchmarkTraceWriteReplay(b *testing.B) {
	al := mem.NewAllocator()
	prog := progs.Fig1(al, progs.Fig1Options{N: 64})
	b.Run("record", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			var buf bytes.Buffer
			tw := NewWriter(&buf)
			cilk.Run(prog, cilk.Config{Spec: cilk.StealAll{}, Hooks: tw})
			if err := tw.Close(); err != nil {
				b.Fatal(err)
			}
		}
	})
	var buf bytes.Buffer
	tw := NewWriter(&buf)
	cilk.Run(prog, cilk.Config{Spec: cilk.StealAll{}, Hooks: tw})
	if err := tw.Close(); err != nil {
		b.Fatal(err)
	}
	data := buf.Bytes()
	b.Run("replay-sp+", func(b *testing.B) {
		b.SetBytes(int64(len(data)))
		for i := 0; i < b.N; i++ {
			d := spplus.New()
			if _, err := Replay(bytes.NewReader(data), d); err != nil {
				b.Fatal(err)
			}
		}
	})
}
