package trace

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/cilk"
	"repro/internal/mem"
	"repro/internal/peerset"
	"repro/internal/progs"
	"repro/internal/spplus"
)

func TestReplayReproducesSPPlus(t *testing.T) {
	al := mem.NewAllocator()
	prog := progs.Fig1(al, progs.Fig1Options{})

	var buf bytes.Buffer
	tw := NewWriter(&buf)
	live := spplus.New()
	cilk.Run(prog, cilk.Config{Spec: cilk.StealAll{}, Hooks: cilk.Multi{tw, live}})
	if err := tw.Close(); err != nil {
		t.Fatal(err)
	}

	replayed := spplus.New()
	n, err := Replay(bytes.NewReader(buf.Bytes()), replayed)
	if err != nil {
		t.Fatal(err)
	}
	if n != tw.Events() {
		t.Fatalf("replayed %d events, recorded %d", n, tw.Events())
	}
	if live.Report().Summary() != replayed.Report().Summary() {
		t.Fatalf("reports differ:\nlive:    %s\nreplay:  %s",
			live.Report().Summary(), replayed.Report().Summary())
	}
	if replayed.Report().Empty() {
		t.Fatal("the Fig 1 race must survive the round trip")
	}
}

func TestReplayReproducesPeerSet(t *testing.T) {
	var buf bytes.Buffer
	tw := NewWriter(&buf)
	live := peerset.New()
	cilk.Run(progs.Fig2Reads(1, 9), cilk.Config{Hooks: cilk.Multi{tw, live}})
	if err := tw.Close(); err != nil {
		t.Fatal(err)
	}
	replayed := peerset.New()
	if _, err := Replay(bytes.NewReader(buf.Bytes()), replayed); err != nil {
		t.Fatal(err)
	}
	// The fixture's reducer is quiet-declared, so it replays under a
	// synthetic name; verdicts and participants must still match exactly.
	lr, rr := live.Report(), replayed.Report()
	if lr.Distinct() != rr.Distinct() || lr.Total() != rr.Total() || rr.Empty() {
		t.Fatalf("verdicts differ: live %d/%d, replay %d/%d",
			lr.Distinct(), lr.Total(), rr.Distinct(), rr.Total())
	}
	if lr.Races()[0].First.Frame != rr.Races()[0].First.Frame ||
		lr.Races()[0].Second.Frame != rr.Races()[0].Second.Frame {
		t.Fatal("race participants differ across replay")
	}
}

func TestQuickReplayIdenticalOnRandomPrograms(t *testing.T) {
	check := func(seed int64, p8 uint8) bool {
		p := float64(p8%4) / 4
		al := mem.NewAllocator()
		prog := progs.Random(al, progs.RandomOpts{Seed: seed, MonoidStores: true, Reads: true})
		spec := progs.RandomSpec{Seed: seed + 9, P: p, Reduce: cilk.ReduceOrder(seed % 3)}

		var buf bytes.Buffer
		tw := NewWriter(&buf)
		live := spplus.New()
		cilk.Run(prog, cilk.Config{Spec: spec, Hooks: cilk.Multi{tw, live}})
		if tw.Close() != nil {
			return false
		}
		replayed := spplus.New()
		if _, err := Replay(bytes.NewReader(buf.Bytes()), replayed); err != nil {
			t.Logf("seed %d: replay error: %v", seed, err)
			return false
		}
		return live.Report().Summary() == replayed.Report().Summary()
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestTraceCompactness(t *testing.T) {
	al := mem.NewAllocator()
	prog := progs.Fig1(al, progs.Fig1Options{N: 16})
	var buf bytes.Buffer
	tw := NewWriter(&buf)
	cilk.Run(prog, cilk.Config{Spec: cilk.StealAll{}, Hooks: tw})
	if err := tw.Close(); err != nil {
		t.Fatal(err)
	}
	perEvent := float64(buf.Len()) / float64(tw.Events())
	if perEvent > 8 {
		t.Fatalf("%.1f bytes/event — format not compact", perEvent)
	}
}

func TestReplayErrors(t *testing.T) {
	cases := map[string][]byte{
		"empty":       {},
		"bad magic":   []byte("NOTATRACE!!\n"),
		"bad kind":    append([]byte(Magic), 0xEE),
		"truncated":   append([]byte(Magic), byte(evLoad)),
		"unknown frm": append([]byte(Magic), byte(evSync), 42),
	}
	for name, data := range cases {
		if _, err := Replay(bytes.NewReader(data), cilk.Empty{}); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
}

func TestReplayFrameMetadata(t *testing.T) {
	var buf bytes.Buffer
	tw := NewWriter(&buf)
	cilk.Run(func(c *cilk.Ctx) {
		c.Spawn("child", func(cc *cilk.Ctx) {
			cc.Call("leaf", func(*cilk.Ctx) {})
		})
		c.Sync()
	}, cilk.Config{Hooks: tw})
	if err := tw.Close(); err != nil {
		t.Fatal(err)
	}
	var seen []string
	spy := frameSpy{on: func(f *cilk.Frame) {
		seen = append(seen, f.String())
		if f.Label == "leaf" {
			if f.Depth != 2 || f.Spawned || f.Parent == nil || f.Parent.Label != "child" {
				t.Errorf("leaf metadata wrong: %+v", f)
			}
		}
	}}
	if _, err := Replay(bytes.NewReader(buf.Bytes()), spy); err != nil {
		t.Fatal(err)
	}
	if strings.Join(seen, " ") != "main#0 child#1 leaf#2" {
		t.Fatalf("frames = %v", seen)
	}
}

type frameSpy struct {
	cilk.Empty
	on func(*cilk.Frame)
}

func (s frameSpy) FrameEnter(f *cilk.Frame) { s.on(f) }

// FuzzReplay: arbitrary bytes must never panic the replayer.
func FuzzReplay(f *testing.F) {
	var buf bytes.Buffer
	tw := NewWriter(&buf)
	cilk.Run(progs.Fig2Reads(1, 9), cilk.Config{Spec: cilk.StealAll{}, Hooks: tw})
	tw.Close()
	f.Add(buf.Bytes())
	f.Add([]byte(Magic))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		d := spplus.New()
		_, _ = Replay(bytes.NewReader(data), d)
	})
}

// failWriter fails after n bytes, for the latched-error path.
type failWriter struct{ n int }

func (w *failWriter) Write(p []byte) (int, error) {
	if w.n <= 0 {
		return 0, errShort
	}
	take := len(p)
	if take > w.n {
		take = w.n
		w.n = 0
		return take, errShort
	}
	w.n -= take
	return take, nil
}

var errShort = bytes.ErrTooLarge

func TestWriterLatchesErrors(t *testing.T) {
	// The writer buffers, so small failures surface at Close (and large
	// streams latch mid-run once the buffer first flushes); either way
	// Close must report the failure and nothing may panic.
	tw := NewWriter(&failWriter{n: 4}) // fails at the first flush
	cilk.Run(progs.Fig2Reads(1), cilk.Config{Hooks: tw})
	if tw.Close() == nil {
		t.Fatal("write failure must surface at Close")
	}
	// A long run overflows the buffer mid-stream; the error latches and
	// subsequent emits are no-ops.
	tw2 := NewWriter(&failWriter{n: 64})
	al := mem.NewAllocator()
	cilk.Run(progs.Fig1(al, progs.Fig1Options{N: 512}), cilk.Config{Spec: cilk.StealAll{}, Hooks: tw2})
	if tw2.Err() == nil {
		t.Fatal("mid-stream failure must latch during the run")
	}
	if tw2.Close() == nil {
		t.Fatal("Close must report the latched failure")
	}
}

// TestReplayEveryTruncation replays a valid trace truncated at every byte
// position: each prefix must either replay cleanly (event boundary) or
// return an error — never panic, never misbehave.
func TestReplayEveryTruncation(t *testing.T) {
	var buf bytes.Buffer
	tw := NewWriter(&buf)
	al := mem.NewAllocator()
	cilk.Run(progs.Fig1(al, progs.Fig1Options{}), cilk.Config{Spec: cilk.StealAll{}, Hooks: tw})
	if err := tw.Close(); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	clean := 0
	for n := 0; n <= len(data); n++ {
		d := spplus.New()
		if _, err := Replay(bytes.NewReader(data[:n]), d); err == nil {
			clean++
		}
	}
	// The full trace and every exact event boundary replay cleanly;
	// mid-event prefixes error out. There must be plenty of both.
	if clean < 10 || clean >= len(data) {
		t.Fatalf("clean prefixes = %d of %d — truncation handling suspicious", clean, len(data))
	}
}

// BenchmarkTraceWriteReplay measures the trace pipeline's throughput:
// recording overhead per event and replay-into-SP+ cost.
func BenchmarkTraceWriteReplay(b *testing.B) {
	al := mem.NewAllocator()
	prog := progs.Fig1(al, progs.Fig1Options{N: 64})
	b.Run("record", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			var buf bytes.Buffer
			tw := NewWriter(&buf)
			cilk.Run(prog, cilk.Config{Spec: cilk.StealAll{}, Hooks: tw})
			if err := tw.Close(); err != nil {
				b.Fatal(err)
			}
		}
	})
	var buf bytes.Buffer
	tw := NewWriter(&buf)
	cilk.Run(prog, cilk.Config{Spec: cilk.StealAll{}, Hooks: tw})
	if err := tw.Close(); err != nil {
		b.Fatal(err)
	}
	data := buf.Bytes()
	b.Run("replay-sp+", func(b *testing.B) {
		b.SetBytes(int64(len(data)))
		for i := 0; i < b.N; i++ {
			d := spplus.New()
			if _, err := Replay(bytes.NewReader(data), d); err != nil {
				b.Fatal(err)
			}
		}
	})
}
