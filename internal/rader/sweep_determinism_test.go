package rader

import (
	"reflect"
	"testing"

	"repro/internal/cilk"
	"repro/internal/corpus"
	"repro/internal/mem"
)

// sweepOf runs the §7 sweep for one corpus entry at the given parallelism.
// Each run gets a fresh allocator so address layouts are identical across
// instances and findings are comparable.
func sweepOf(t *testing.T, name string, workers int) *CoverageResult {
	t.Helper()
	for _, e := range corpus.All() {
		if e.Name != name {
			continue
		}
		return Sweep(func() func(*cilk.Ctx) {
			return e.Build(mem.NewAllocator())
		}, SweepOptions{Workers: workers})
	}
	t.Fatalf("corpus entry %q not found", name)
	return nil
}

// A sweep's result must not depend on how many workers ran it: serial and
// 8-way sweeps of the same program must agree field for field, including
// the order of Races and Failures.
func TestSweepDeterministicAcrossWorkers(t *testing.T) {
	for _, name := range []string{
		"figure1-shallow-copy",           // multi-race program
		"oblivious-write-write-siblings", // races on every spec
		"clean-reducer-sum",              // clean program
	} {
		t.Run(name, func(t *testing.T) {
			serial := sweepOf(t, name, 1)
			parallel := sweepOf(t, name, 8)
			if !reflect.DeepEqual(serial.Races, parallel.Races) {
				t.Errorf("Races differ across worker counts:\nserial:   %v\nparallel: %v",
					serial.Races, parallel.Races)
			}
			if !reflect.DeepEqual(serial.Failures, parallel.Failures) {
				t.Errorf("Failures differ across worker counts:\nserial:   %v\nparallel: %v",
					serial.Failures, parallel.Failures)
			}
			if serial.SpecsRun != parallel.SpecsRun || serial.TotalReports() != parallel.TotalReports() {
				t.Errorf("counters differ: serial ran %d specs / %d reports, parallel %d / %d",
					serial.SpecsRun, serial.TotalReports(), parallel.SpecsRun, parallel.TotalReports())
			}
			if serial.Profile != parallel.Profile {
				t.Errorf("profiles differ: %+v vs %+v", serial.Profile, parallel.Profile)
			}
		})
	}
}

// Repeated parallel sweeps must also agree with each other — the property
// the -json CLI path and the service cache both rely on.
func TestSweepRepeatable(t *testing.T) {
	a := sweepOf(t, "figure1-shallow-copy", 4)
	b := sweepOf(t, "figure1-shallow-copy", 4)
	if !reflect.DeepEqual(a.Races, b.Races) {
		t.Fatalf("two 4-way sweeps disagree:\n%v\nvs\n%v", a.Races, b.Races)
	}
}
