package rader

import (
	"sync"
	"sync/atomic"

	"repro/internal/cilk"
	"repro/internal/core"
	"repro/internal/sched"
	"repro/internal/specgen"
	"repro/internal/spplus"
	"repro/internal/streamerr"
)

// The prefix-sharing sweep makes each unit's cost proportional to its
// specification's divergent suffix instead of the whole execution. The
// family's specs are grouped by longest common prefix of steal decisions
// into a trie (specgen.BuildTrie); each trie leaf is one group of
// stream-identical specs and is analysed exactly once. A sweep unit walks
// the leftmost path of its subtree: it re-executes the program with the
// SP+ detector gated off for the shared prefix, restores the detector from
// the snapshot captured at the subtree's divergence probe, and lets the
// gate open there. At each branch node on its path it captures a fresh
// copy-on-write snapshot and spawns one unit per sibling subtree. The
// budget/deadline guard sits outside the gate, so every unit counts the
// full event stream — budget and deadline aborts land on the same event,
// with the same error text, as the naive per-spec sweep.

// SweepStats accounts for how a sweep was executed. It is diagnostic
// output: two sweeps over the same program are equivalent iff their
// canonical CoverageResult fields match, regardless of Stats.
type SweepStats struct {
	// Strategy is "prefix" or "naive".
	Strategy string
	// SnapshotHits counts sweep units seeded from a detector snapshot;
	// SnapshotMisses counts units that ran fully live (the root unit, and
	// any fallback unit respawned after a failure upstream of its subtree).
	SnapshotHits   int64
	SnapshotMisses int64
	// EventsSkipped is the total number of instrumentation events the
	// prefix gates suppressed — work the naive sweep would have fed to a
	// live detector.
	EventsSkipped int64
	// PagesCopied counts shadow-memory pages cloned by copy-on-write
	// across all units — the cost side of forking detectors.
	PagesCopied int64
	// Groups is the number of distinct event streams the family collapsed
	// to (specs with identical steal decisions and reduce mode share one).
	Groups int
}

// unitTask is one schedulable sweep unit: analyse the leftmost leaf group
// of node, seeded from snap at divergence probe seedSeq. A nil snap means
// the unit runs fully live from the first event (the root unit, and
// fallback units respawned after an upstream failure).
type unitTask struct {
	node    *specgen.TrieNode
	snap    *spplus.Snapshot
	seedSeq int
	root    bool
}

// groupResult is the verdict for one trie leaf, replicated at collect time
// to every specification in the group.
type groupResult struct {
	races     []core.Race
	total     int
	err       error
	viewReads *core.Report // piggybacked Peer-Set verdict, root unit only
}

// prefixSweep is the shared state of one prefix-sharing sweep run.
type prefixSweep struct {
	factory func() func(*cilk.Ctx)
	opts    SweepOptions
	clock   sweepClock

	specs []cilk.StealSpec
	names []string
	trie  *specgen.Trie

	results []groupResult // one slot per trie group, each written once
	psErr   error         // root-unit failure, doubling as the peer-set loss

	pool sync.Pool // of *spplus.Detector
	// lanes is both the concurrency bound and the span-lane allocator: it
	// holds the values 1..workers, a unit runs while holding one, and no
	// two concurrent units can hold the same lane — so per-unit spans on
	// lane TIDs never interleave on one timeline row.
	lanes    chan int
	wg       sync.WaitGroup
	progress *progressSink

	hits, misses, skipped, pages atomic.Int64
}

// sweepPrefix runs the §7 sweep with prefix sharing. Equivalence contract:
// the returned CoverageResult's canonical fields (Profile, SpecsRun,
// ViewReads, Races, Failures, TotalReports) are byte-identical to the
// naive per-specification sweep's.
func sweepPrefix(factory func() func(*cilk.Ctx), opts SweepOptions, workers int, clock sweepClock) *CoverageResult {
	cr := &CoverageResult{ViewReads: &core.Report{}, Stats: SweepStats{Strategy: "prefix"}}

	pspan := opts.Trace.Start("profile")
	profile, probes, err := measureProbes(factory)
	pspan.End()
	if err != nil {
		cr.Failures = append(cr.Failures, SpecFailure{Spec: "profile", Err: err})
		return cr
	}
	cr.Profile = profile

	specs := specgen.All(cr.Profile)
	s := &prefixSweep{
		factory: factory, opts: opts, clock: clock,
		specs:    specs,
		names:    make([]string, len(specs)),
		trie:     specgen.BuildTrie(specs, probes),
		lanes:    make(chan int, workers),
		progress: newProgressSink(opts.OnProgress),
	}
	for lane := 1; lane <= workers; lane++ {
		s.lanes <- lane
	}
	for i, spec := range specs {
		s.names[i] = sched.Format(spec)
	}
	s.results = make([]groupResult, len(s.trie.Groups))
	s.pool.New = func() any { return spplus.New() }
	cr.Stats.Groups = len(s.trie.Groups)
	s.progress.start(len(s.trie.Groups))

	s.spawn(unitTask{node: s.trie.Root, root: true})
	s.wg.Wait()

	cr.Stats.SnapshotHits = s.hits.Load()
	cr.Stats.SnapshotMisses = s.misses.Load()
	cr.Stats.EventsSkipped = s.skipped.Load()
	cr.Stats.PagesCopied = s.pages.Load()

	// Collect exactly as the naive sweep does, replicating each group's
	// verdict to every member specification in spec-index order so race
	// attribution (first spec to report a distinct race wins) matches.
	cspan := opts.Trace.Start("collect")
	groupOf := make([]int, len(specs))
	for g, members := range s.trie.Groups {
		for _, i := range members {
			groupOf[i] = g
		}
	}
	seen := make(map[string]bool)
	for i := range specs {
		res := s.results[groupOf[i]]
		name := s.names[i]
		if res.err != nil {
			if i == 0 && s.psErr != nil {
				// The root unit carried the Peer-Set pass too; its loss must
				// be visible under both names, as in the naive piggyback.
				cr.Failures = append(cr.Failures, SpecFailure{Spec: "peer-set", Err: s.psErr})
			}
			cr.Failures = append(cr.Failures, SpecFailure{Spec: name, Err: res.err})
			continue
		}
		if res.viewReads != nil {
			cr.ViewReads = res.viewReads
		}
		cr.SpecsRun++
		cr.total += res.total
		for _, race := range res.races {
			key := race.String()
			if !seen[key] {
				seen[key] = true
				cr.Races = append(cr.Races, CoverageFinding{Spec: name, Race: race})
			}
		}
	}
	cr.sortCanonical()
	cspan.Arg("specs", cr.SpecsRun).Arg("races", len(cr.Races)).
		Arg("failures", len(cr.Failures)).End()
	return cr
}

// spawn schedules a unit on the worker pool. The semaphore bounds
// concurrency; the goroutine itself is cheap, so a unit capturing a
// snapshot mid-run never blocks on its children.
func (s *prefixSweep) spawn(t unitTask) {
	s.wg.Add(1)
	go func() {
		lane := <-s.lanes
		defer func() {
			s.lanes <- lane
			s.wg.Done()
		}()
		s.runUnit(t, lane)
	}()
}

func deadlineSkip() error {
	return streamerr.Errorf("rader", streamerr.KindDeadline,
		"sweep deadline exceeded before specification ran")
}

// runUnit analyses the leftmost leaf group of t.node, on the given span
// lane, and spawns one unit per sibling subtree at each branch node on
// the way down.
func (s *prefixSweep) runUnit(t unitTask, lane int) {
	if s.clock.expired() {
		err := deadlineSkip()
		groups := t.node.Leaves(nil)
		for _, g := range groups {
			s.results[g] = groupResult{err: err}
		}
		if t.root {
			s.psErr = err
		}
		// A deadline skip settles every leaf group under the node at once.
		s.progress.unitDone(len(groups), 0, 0, 0)
		return
	}

	var branches []*specgen.TrieNode
	n := t.node
	for !n.IsLeaf() {
		branches = append(branches, n)
		n = n.Children[0]
	}
	leaf := n.Group
	leafSpec := s.specs[s.trie.Groups[leaf][0]]
	name := s.names[s.trie.Groups[leaf][0]]
	span := s.opts.Trace.StartTID(lane, "spec:"+name)

	det := s.pool.Get().(*spplus.Detector)
	det.Reset()
	pagesBefore := int64(det.PagesCopied())
	if t.snap != nil {
		det.Restore(t.snap)
		s.hits.Add(1)
	} else {
		s.misses.Add(1)
	}
	gate := cilk.NewGate(det, t.snap == nil)

	// nextBranch is shared with the recovery path: sibling subtrees of
	// branch nodes the failing unit never reached must still be analysed,
	// so they are respawned as fully live units.
	nextBranch := 0
	unitRaces := 0
	defer func() {
		skipped := gate.Skipped()
		pages := int64(det.PagesCopied()) - pagesBefore
		s.skipped.Add(skipped)
		s.pages.Add(pages)
		if p := recover(); p != nil {
			err := streamerr.FromPanic("rader", p)
			s.results[leaf] = groupResult{err: err}
			unitRaces = 0
			if t.root {
				s.psErr = err
			}
			for _, b := range branches[nextBranch:] {
				for _, child := range b.Children[1:] {
					s.spawn(unitTask{node: child})
				}
			}
			span.Arg("error", err.Error()).End()
		}
		// Resolved one leaf group, by verdict or by failure.
		s.progress.unitDone(1, unitRaces, skipped, pages)
		det.Reset()
		s.pool.Put(det)
	}()

	onProbe := func(ci cilk.ContInfo) {
		if ci.Seq < 1 || ci.Seq > len(s.trie.Probes) || !s.trie.Probes[ci.Seq-1].Matches(ci) {
			panic(streamerr.Errorf("rader", streamerr.KindState,
				"continuation probe %d diverged from the recorded sequence; program is not ostensibly deterministic", ci.Seq))
		}
		for nextBranch < len(branches) && ci.Seq == branches[nextBranch].Seq {
			b := branches[nextBranch]
			nextBranch++
			snap := det.Snapshot()
			for _, child := range b.Children[1:] {
				s.spawn(unitTask{node: child, snap: snap, seedSeq: b.Seq})
			}
		}
	}
	spec := cilk.NewGatedSpec(leafSpec, gate, t.seedSeq, onProbe)

	var hooks cilk.Hooks = gate
	var ps core.Detector
	if t.root {
		// The root unit's leftmost leaf is the all-serial group (the
		// no-steal edge sorts first at every branch), so — exactly like the
		// naive sweep's first unit — the schedule-independent Peer-Set pass
		// piggybacks on its execution.
		psDet, psHooks, _ := NewDetector(PeerSet)
		ps = psDet
		hooks = cilk.MultiHooks(psHooks, gate)
	}
	if s.opts.EventBudget > 0 || s.opts.Timeout > 0 {
		hooks = newGuard(hooks, s.opts.EventBudget, s.clock.deadline())
	}

	cilk.Run(s.factory(), cilk.Config{Spec: spec, Hooks: hooks})

	res := groupResult{
		races: append([]core.Race(nil), det.Report().Races()...),
		total: det.Report().Total(),
	}
	if ps != nil {
		res.viewReads = ps.Report()
	}
	s.results[leaf] = res
	unitRaces = det.Report().Distinct()
	span.Arg("races", unitRaces).
		Arg("skipped", gate.Skipped()).
		Arg("seed", t.seedSeq).End()
}

// measureProbes profiles one program instance and records its continuation
// probes, containing any panic the program (or profiler) raises.
func measureProbes(factory func() func(*cilk.Ctx)) (p specgen.Profile, probes []specgen.ProbeRecord, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = streamerr.FromPanic("rader", r)
		}
	}()
	p, probes = specgen.MeasureProbes(factory())
	return p, probes, nil
}
