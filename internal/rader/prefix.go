package rader

import (
	"fmt"
	"sync/atomic"

	"repro/internal/cilk"
	"repro/internal/core"
	"repro/internal/sched"
	"repro/internal/specgen"
	"repro/internal/spplus"
	"repro/internal/streamerr"
)

// The prefix-sharing sweep makes each unit's cost proportional to its
// specification's divergent suffix instead of the whole execution. The
// family's specs are grouped by longest common prefix of steal decisions
// into a trie (specgen.BuildTrieIndexed, expanded lazily as units walk
// it); each trie leaf is one group of stream-identical specs and is
// analysed exactly once. A sweep unit walks the leftmost path of its
// subtree: it re-executes the program with the SP+ detector gated off for
// the shared prefix, restores the detector from the snapshot captured at
// the subtree's divergence probe, and lets the gate open there. At each
// branch node on its path it captures a fresh copy-on-write snapshot and
// pushes one unit per sibling subtree onto its own deque — the
// work-stealing scheduler in parsweep.go distributes those units across
// workers, handing the snapshot off with each stolen unit. The
// budget/deadline guard sits outside the gate, so every unit counts the
// full event stream — budget and deadline aborts land on the same event,
// with the same error text, as the naive per-spec sweep.

// SweepStats accounts for how a sweep was executed. It is diagnostic
// output: two sweeps over the same program are equivalent iff their
// canonical CoverageResult fields match, regardless of Stats. The
// scheduling fields (Workers, Steals, Handoffs, PagesPooled, WorkerBusy)
// are nondeterministic across runs and never enter the report document;
// the sampling fields (SpecsTotal, Sampled, CoverageFraction, Confidence)
// are deterministic and do.
type SweepStats struct {
	// Strategy is "prefix" or "naive".
	Strategy string
	// SnapshotHits counts sweep units seeded from a detector snapshot;
	// SnapshotMisses counts units that ran fully live (the root unit, and
	// any fallback unit respawned after a failure upstream of its subtree).
	SnapshotHits   int64
	SnapshotMisses int64
	// EventsSkipped is the total number of instrumentation events the
	// prefix gates suppressed — work the naive sweep would have fed to a
	// live detector.
	EventsSkipped int64
	// PagesCopied counts shadow-memory pages cloned by copy-on-write
	// across all units — the cost side of forking detectors.
	PagesCopied int64
	// Groups is the number of distinct event streams the family collapsed
	// to (specs with identical steal decisions and reduce mode share one).
	Groups int

	// Workers is the scheduler width the sweep ran at.
	Workers int
	// Steals counts units taken from another worker's deque; Handoffs
	// counts the stolen units that carried a snapshot across workers (the
	// rest ran live — root and failure-respawn units).
	Steals   int64
	Handoffs int64
	// PagesPooled is the shadow-page free-list residency summed over the
	// workers' pooled detectors at sweep end (each list capped, so a
	// 10^4-spec sweep cannot hoard pages unboundedly).
	PagesPooled int
	// WorkerBusy is each worker's total unit time in nanoseconds — thread
	// CPU time on Linux, per-unit wall time elsewhere. Max over workers is
	// the sweep's critical path — the scaling measure on hosts with fewer
	// cores than workers, where wall-time billing would charge every lane
	// for time spent preempted.
	WorkerBusy []int64

	// SpecsTotal is the full family size; when the sweep was sampled,
	// Sampled is set, CoverageFraction is the fraction of the family that
	// ran, and Confidence carries the human-readable caveat. All four are
	// deterministic for a given (program, options) and are part of the
	// report document.
	SpecsTotal       int
	Sampled          bool
	CoverageFraction float64
	Confidence       string
}

// unitTask is one schedulable sweep unit: analyse the leftmost leaf group
// of node, seeded from snap at divergence probe seedSeq. A nil snap means
// the unit runs fully live from the first event (the root unit, and
// fallback units respawned after an upstream failure).
type unitTask struct {
	node    *specgen.TrieNode
	snap    *snapRef
	seedSeq int
	root    bool
}

// groupResult is the verdict for one trie leaf, replicated at collect time
// to every specification in the group.
type groupResult struct {
	races     []core.Race
	total     int
	err       error
	viewReads *core.Report // piggybacked Peer-Set verdict, root unit only
}

// prefixSweep is the shared state of one prefix-sharing sweep run.
type prefixSweep struct {
	factory func() func(*cilk.Ctx)
	opts    SweepOptions
	clock   sweepClock

	fam  *specgen.Family
	sel  []int // family indices the sweep runs (all, or the sample)
	trie *specgen.Trie

	results []groupResult // one slot per trie group, each written once
	psErr   error         // root-unit failure, doubling as the peer-set loss

	sched    *wsSched
	progress *progressSink

	hits, misses, skipped, pages atomic.Int64
}

// specAt returns the specification at position pos of the selection.
func (s *prefixSweep) specAt(pos int) cilk.StealSpec { return s.fam.At(s.sel[pos]) }

// sweepPrefix runs the §7 sweep with prefix sharing on the work-stealing
// scheduler. Equivalence contract: the returned CoverageResult's canonical
// fields (Profile, SpecsRun, ViewReads, Races, Failures, TotalReports) are
// byte-identical to the naive per-specification sweep's, at any worker
// count and under the same sampling options.
func sweepPrefix(factory func() func(*cilk.Ctx), opts SweepOptions, workers int, clock sweepClock) *CoverageResult {
	cr := &CoverageResult{ViewReads: &core.Report{}, Stats: SweepStats{Strategy: "prefix", Workers: workers}}

	pspan := opts.Trace.Start("profile")
	profile, probes, err := measureProbes(factory)
	pspan.End()
	if err != nil {
		cr.Failures = append(cr.Failures, SpecFailure{Spec: "profile", Err: err})
		return cr
	}
	cr.Profile = profile

	fam := specgen.NewFamily(profile)
	sel := specgen.SampleFamily(fam, probes, opts.SampleSpecs, opts.SampleSeed)
	applySampleStats(&cr.Stats, fam.Len(), len(sel))
	s := &prefixSweep{
		factory: factory, opts: opts, clock: clock,
		fam: fam, sel: sel,
		trie:     specgen.BuildTrieIndexed(len(sel), func(pos int) cilk.StealSpec { return fam.At(sel[pos]) }, probes),
		progress: newProgressSink(opts.OnProgress),
	}
	s.results = make([]groupResult, len(s.trie.Groups))
	cr.Stats.Groups = len(s.trie.Groups)
	s.progress.start(len(s.trie.Groups))

	ws := newWSSched(s, workers)
	s.sched = ws
	ws.push(ws.workers[0], unitTask{node: s.trie.Root, root: true})
	ws.runAll()

	cr.Stats.SnapshotHits = s.hits.Load()
	cr.Stats.SnapshotMisses = s.misses.Load()
	cr.Stats.EventsSkipped = s.skipped.Load()
	cr.Stats.PagesCopied = s.pages.Load()
	cr.Stats.Steals = ws.steals.Load()
	cr.Stats.Handoffs = ws.handoffs.Load()
	for _, w := range ws.workers {
		cr.Stats.WorkerBusy = append(cr.Stats.WorkerBusy, w.busy.Nanoseconds())
		cr.Stats.PagesPooled += w.pooled
	}

	// Collect exactly as the naive sweep does, replicating each group's
	// verdict to every member specification in selection order so race
	// attribution (first spec to report a distinct race wins) matches.
	cspan := opts.Trace.Start("collect")
	groupOf := make([]int, len(sel))
	for g, members := range s.trie.Groups {
		for _, pos := range members {
			groupOf[pos] = g
		}
	}
	seen := make(map[string]bool)
	for pos := range sel {
		res := s.results[groupOf[pos]]
		if res.err != nil {
			name := sched.Format(s.specAt(pos))
			if pos == 0 && s.psErr != nil {
				// The root unit carried the Peer-Set pass too; its loss must
				// be visible under both names, as in the naive piggyback.
				cr.Failures = append(cr.Failures, SpecFailure{Spec: "peer-set", Err: s.psErr})
			}
			cr.Failures = append(cr.Failures, SpecFailure{Spec: name, Err: res.err})
			continue
		}
		if res.viewReads != nil {
			cr.ViewReads = res.viewReads
		}
		cr.SpecsRun++
		cr.total += res.total
		for _, race := range res.races {
			key := race.String()
			if !seen[key] {
				seen[key] = true
				cr.Races = append(cr.Races, CoverageFinding{Spec: sched.Format(s.specAt(pos)), Race: race})
			}
		}
	}
	cr.sortCanonical()
	cspan.Arg("specs", cr.SpecsRun).Arg("races", len(cr.Races)).
		Arg("failures", len(cr.Failures)).End()
	return cr
}

// applySampleStats fills the deterministic sampling fields shared by both
// sweep strategies.
func applySampleStats(st *SweepStats, total, selected int) {
	st.SpecsTotal = total
	st.CoverageFraction = 1
	if total > 0 {
		st.CoverageFraction = float64(selected) / float64(total)
	}
	if selected < total {
		st.Sampled = true
		st.Confidence = confidenceNote(selected, total)
	}
}

// confidenceNote renders the deterministic caveat attached to a sampled
// sweep's stats (and report document): a sampled sweep proves races it
// finds, but its clean verdict covers only the schedules it ran.
func confidenceNote(selected, total int) string {
	return fmt.Sprintf("sampled %d of %d specifications (%.1f%% of the family, "+
		"stratified by first-steal subtree); a clean verdict covers only the sampled schedules",
		selected, total, 100*float64(selected)/float64(total))
}

func deadlineSkip() error {
	return streamerr.Errorf("rader", streamerr.KindDeadline,
		"sweep deadline exceeded before specification ran")
}

// runUnit analyses the leftmost leaf group of t.node on worker w, and
// pushes one unit per sibling subtree at each branch node on the way down.
func (s *prefixSweep) runUnit(t unitTask, w *sweepWorker) {
	if s.clock.expired() {
		t.snap.release(w)
		err := deadlineSkip()
		groups := t.node.Leaves(nil)
		for _, g := range groups {
			s.results[g] = groupResult{err: err}
		}
		if t.root {
			s.psErr = err
		}
		// A deadline skip settles every leaf group under the node at once.
		s.progress.unitDone(len(groups), 0, 0, 0)
		return
	}

	var branches []*specgen.TrieNode
	n := t.node
	for {
		s.trie.Expand(n)
		if n.IsLeaf() {
			break
		}
		branches = append(branches, n)
		n = n.Children[0]
	}
	leaf := n.Group
	leafSpec := s.specAt(s.trie.Groups[leaf][0])
	name := sched.Format(leafSpec)
	span := s.opts.Trace.StartTID(w.id+1, "spec:"+name)

	det := w.detPool.Get().(*spplus.Detector)
	det.Reset()
	pagesBefore := int64(det.PagesCopied())
	seeded := t.snap != nil
	if seeded {
		det.Restore(t.snap.snap)
		t.snap.release(w)
		s.hits.Add(1)
	} else {
		s.misses.Add(1)
	}
	gate := w.gate
	gate.Rearm(det, !seeded)

	// nextBranch is shared with the recovery path: sibling subtrees of
	// branch nodes the failing unit never reached must still be analysed,
	// so they are respawned as fully live units.
	nextBranch := 0
	unitRaces := 0
	defer func() {
		skipped := gate.Skipped()
		pages := int64(det.PagesCopied()) - pagesBefore
		s.skipped.Add(skipped)
		s.pages.Add(pages)
		if p := recover(); p != nil {
			err := streamerr.FromPanic("rader", p)
			s.results[leaf] = groupResult{err: err}
			unitRaces = 0
			if t.root {
				s.psErr = err
			}
			for _, b := range branches[nextBranch:] {
				for _, child := range b.Children[1:] {
					s.sched.push(w, unitTask{node: child})
				}
			}
			span.Arg("error", err.Error()).End()
		}
		// Resolved one leaf group, by verdict or by failure.
		s.progress.unitDone(1, unitRaces, skipped, pages)
		det.Reset()
		w.pooled = det.PagesPooled()
		w.detPool.Put(det)
	}()

	onProbe := func(ci cilk.ContInfo) {
		if ci.Seq < 1 || ci.Seq > len(s.trie.Probes) || !s.trie.Probes[ci.Seq-1].Matches(ci) {
			panic(streamerr.Errorf("rader", streamerr.KindState,
				"continuation probe %d diverged from the recorded sequence; program is not ostensibly deterministic", ci.Seq))
		}
		for nextBranch < len(branches) && ci.Seq == branches[nextBranch].Seq {
			b := branches[nextBranch]
			nextBranch++
			ref := newSnapRef(det.SnapshotInto(w.takeSnap()), len(b.Children)-1)
			for _, child := range b.Children[1:] {
				s.sched.push(w, unitTask{node: child, snap: ref, seedSeq: b.Seq})
			}
		}
	}
	spec := cilk.NewGatedSpec(leafSpec, gate, t.seedSeq, onProbe)

	var hooks cilk.Hooks = gate
	var ps core.Detector
	if t.root {
		// The root unit's leftmost leaf is the all-serial group (the
		// no-steal edge sorts first at every branch), so — exactly like the
		// naive sweep's first unit — the schedule-independent Peer-Set pass
		// piggybacks on its execution.
		psDet, psHooks, _ := NewDetector(PeerSet)
		ps = psDet
		hooks = cilk.MultiHooks(psHooks, gate)
	}
	if s.opts.EventBudget > 0 || s.opts.Timeout > 0 {
		hooks = newGuard(hooks, s.opts.EventBudget, s.clock.deadline())
	}

	cilk.Run(s.factory(), cilk.Config{Spec: spec, Hooks: hooks})

	res := groupResult{
		races: append([]core.Race(nil), det.Report().Races()...),
		total: det.Report().Total(),
	}
	if ps != nil {
		res.viewReads = ps.Report()
	}
	s.results[leaf] = res
	unitRaces = det.Report().Distinct()
	span.Arg("races", unitRaces).
		Arg("skipped", gate.Skipped()).
		Arg("seed", t.seedSeq).End()
}

// measureProbes profiles one program instance and records its continuation
// probes, containing any panic the program (or profiler) raises.
func measureProbes(factory func() func(*cilk.Ctx)) (p specgen.Profile, probes []specgen.ProbeRecord, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = streamerr.FromPanic("rader", r)
		}
	}()
	p, probes = specgen.MeasureProbes(factory())
	return p, probes, nil
}
