package rader

import (
	"sync"
	"testing"

	"repro/internal/cilk"
	"repro/internal/corpus"
	"repro/internal/mem"
	"repro/internal/obs"
)

// progressRecorder collects every OnProgress snapshot and asserts
// per-delivery monotonicity.
type progressRecorder struct {
	mu    sync.Mutex
	snaps []SweepProgress
}

func (r *progressRecorder) cb(p SweepProgress) {
	r.mu.Lock()
	r.snaps = append(r.snaps, p)
	r.mu.Unlock()
}

func (r *progressRecorder) verify(t *testing.T) []SweepProgress {
	t.Helper()
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.snaps) == 0 {
		t.Fatal("no progress snapshots delivered")
	}
	prev := SweepProgress{}
	for i, s := range r.snaps {
		if s.UnitsDone < prev.UnitsDone || s.UnitsTotal < prev.UnitsTotal ||
			s.EventsSkipped < prev.EventsSkipped || s.PagesCopied < prev.PagesCopied ||
			s.Races < prev.Races {
			t.Fatalf("snapshot %d regressed: %+v after %+v", i, s, prev)
		}
		prev = s
	}
	return append([]SweepProgress(nil), r.snaps...)
}

func sweepWithProgress(t *testing.T, name string, opts SweepOptions) (*CoverageResult, []SweepProgress) {
	t.Helper()
	rec := &progressRecorder{}
	opts.OnProgress = rec.cb
	for _, e := range corpus.All() {
		if e.Name != name {
			continue
		}
		cr := Sweep(func() func(*cilk.Ctx) {
			return e.Build(mem.NewAllocator())
		}, opts)
		return cr, rec.verify(t)
	}
	t.Fatalf("corpus entry %q not found", name)
	return nil, nil
}

func TestSweepProgressPrefix(t *testing.T) {
	cr, snaps := sweepWithProgress(t, "figure1-shallow-copy", SweepOptions{Workers: 4})
	first, last := snaps[0], snaps[len(snaps)-1]
	if first.UnitsTotal == 0 || first.UnitsDone != 0 {
		t.Fatalf("first snapshot should be the 0/total announcement, got %+v", first)
	}
	if last.UnitsDone != last.UnitsTotal {
		t.Fatalf("final snapshot incomplete: %+v", last)
	}
	if last.UnitsTotal != cr.Stats.Groups {
		t.Fatalf("prefix sweep total = %d units, want %d groups", last.UnitsTotal, cr.Stats.Groups)
	}
	// One announcement + one delivery per resolved unit.
	if len(snaps) != 1+last.UnitsTotal {
		t.Fatalf("got %d snapshots, want %d", len(snaps), 1+last.UnitsTotal)
	}
	if cr.Stats.EventsSkipped > 0 && last.EventsSkipped != cr.Stats.EventsSkipped {
		t.Fatalf("final EventsSkipped %d != stats %d", last.EventsSkipped, cr.Stats.EventsSkipped)
	}
	if len(cr.Races) > 0 && last.Races == 0 {
		t.Fatal("sweep found races but progress never reported any")
	}
}

func TestSweepProgressNaive(t *testing.T) {
	cr, snaps := sweepWithProgress(t, "figure1-shallow-copy", SweepOptions{Workers: 4, Naive: true})
	last := snaps[len(snaps)-1]
	if last.UnitsDone != last.UnitsTotal || last.UnitsTotal != cr.SpecsRun {
		t.Fatalf("naive final snapshot %+v, want %d/%d specs", last, cr.SpecsRun, cr.SpecsRun)
	}
	if len(snaps) != 1+last.UnitsTotal {
		t.Fatalf("got %d snapshots, want %d", len(snaps), 1+last.UnitsTotal)
	}
}

// TestSweepProgressNilCallback pins that a sweep without OnProgress pays
// nothing and still works (the sink is nil and inert).
func TestSweepProgressNilCallback(t *testing.T) {
	for _, e := range corpus.All() {
		if e.Name != "clean-reducer-sum" {
			continue
		}
		cr := Sweep(func() func(*cilk.Ctx) {
			return e.Build(mem.NewAllocator())
		}, SweepOptions{Workers: 2})
		if !cr.Complete() {
			t.Fatalf("sweep failed: %v", cr.Failures)
		}
		return
	}
	t.Fatal("corpus entry not found")
}

// TestSweepPrefixWorkerLanes pins the lane-pool contract: per-unit spans
// land on lanes 1..workers and two spans on one lane never overlap in
// time (a lane is held for the unit's whole execution).
func TestSweepPrefixWorkerLanes(t *testing.T) {
	const workers = 3
	tr := obs.NewTrace()
	for _, e := range corpus.All() {
		if e.Name != "figure1-shallow-copy" {
			continue
		}
		Sweep(func() func(*cilk.Ctx) {
			return e.Build(mem.NewAllocator())
		}, SweepOptions{Workers: workers, Trace: tr})

		type iv struct{ start, end int64 }
		byLane := map[int][]iv{}
		units := 0
		for _, s := range tr.Spans() {
			if len(s.Name) < 5 || s.Name[:5] != "spec:" {
				continue
			}
			units++
			if s.TID < 1 || s.TID > workers {
				t.Fatalf("unit span %q on lane %d, want 1..%d", s.Name, s.TID, workers)
			}
			byLane[s.TID] = append(byLane[s.TID], iv{s.Start.Nanoseconds(), (s.Start + s.Dur).Nanoseconds()})
		}
		if units == 0 {
			t.Fatal("no unit spans recorded")
		}
		for lane, ivs := range byLane {
			for i := 0; i < len(ivs); i++ {
				for j := i + 1; j < len(ivs); j++ {
					a, b := ivs[i], ivs[j]
					if a.start < b.end && b.start < a.end {
						t.Fatalf("lane %d has overlapping unit spans %+v and %+v", lane, a, b)
					}
				}
			}
		}
		return
	}
	t.Fatal("corpus entry not found")
}
