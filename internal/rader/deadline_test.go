package rader

import (
	"errors"
	"testing"
	"time"

	"repro/internal/cilk"
	"repro/internal/streamerr"
)

// slowFlat builds a flat program with k spawned children that each burn
// ~delay of wall time — enough specifications (1 + k + k + 2·C(k,2) +
// C(k,3)) and enough per-run latency that a mid-sweep deadline lands after
// some units completed and before others started.
func slowFlat(k int, delay time.Duration) func(*cilk.Ctx) {
	return func(c *cilk.Ctx) {
		for i := 0; i < k; i++ {
			c.Spawn("w", func(*cilk.Ctx) {
				deadline := time.Now().Add(delay)
				for time.Now().Before(deadline) {
				}
			})
		}
		c.Sync()
	}
}

// A deadline landing mid-sweep must split the family cleanly: units that
// finished keep their verdicts, units that never started fail with
// KindDeadline — on both the prefix-sharing and the naive path. The
// deadline derives from one monotonic start reading, so completed work is
// never retroactively failed.
func TestSweepDeadlineMidSweep(t *testing.T) {
	for _, tc := range []struct {
		name string
		opts SweepOptions
	}{
		{"prefix", SweepOptions{Workers: 1, Timeout: 60 * time.Millisecond}},
		{"naive", SweepOptions{Workers: 1, Timeout: 60 * time.Millisecond, Naive: true}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			factory := func() func(*cilk.Ctx) { return slowFlat(7, 2*time.Millisecond) }
			cr := Sweep(factory, tc.opts)
			// 7 flat spawns yield 92 specifications at ~14ms of wall time per
			// run; a 60ms budget cannot cover them all.
			if cr.Complete() {
				t.Fatalf("sweep of %d specs in %v reports Complete", cr.SpecsRun, tc.opts.Timeout)
			}
			if cr.SpecsRun == 0 {
				t.Fatal("no unit finished before the deadline; timeout too tight for this machine")
			}
			if cr.SpecsRun+len(cr.Failures) < 92 {
				t.Fatalf("specs unaccounted for: %d ran + %d failed", cr.SpecsRun, len(cr.Failures))
			}
			deadlineFailures := 0
			for _, sf := range cr.Failures {
				var se *streamerr.Error
				if !errors.As(sf.Err, &se) {
					t.Fatalf("failure %v is not a stream error", sf)
				}
				if se.Kind == streamerr.KindDeadline {
					deadlineFailures++
				}
			}
			if deadlineFailures == 0 {
				t.Fatalf("no deadline failure among %d failures", len(cr.Failures))
			}
		})
	}
}
