package rader

import (
	"fmt"
	"reflect"
	"testing"

	"repro/internal/cilk"
	"repro/internal/corpus"
	"repro/internal/faults"
	"repro/internal/mem"
)

// sweepEntry runs one corpus entry under opts with a fresh allocator, so
// address layouts — and with them race findings — are comparable across
// sweeps.
func sweepEntry(e corpus.Entry, opts SweepOptions) *CoverageResult {
	return Sweep(func() func(*cilk.Ctx) {
		return e.Build(mem.NewAllocator())
	}, opts)
}

// requireEquivalent asserts the canonical CoverageResult fields of a
// prefix-sharing sweep and a naive sweep are identical. SweepStats is
// deliberately excluded: it describes how the sweep executed, not what it
// concluded.
func requireEquivalent(t *testing.T, prefix, naive *CoverageResult) {
	t.Helper()
	if prefix.Profile != naive.Profile {
		t.Errorf("Profile: prefix %+v, naive %+v", prefix.Profile, naive.Profile)
	}
	if prefix.SpecsRun != naive.SpecsRun {
		t.Errorf("SpecsRun: prefix %d, naive %d", prefix.SpecsRun, naive.SpecsRun)
	}
	if prefix.TotalReports() != naive.TotalReports() {
		t.Errorf("TotalReports: prefix %d, naive %d", prefix.TotalReports(), naive.TotalReports())
	}
	if !reflect.DeepEqual(prefix.ViewReads.Races(), naive.ViewReads.Races()) ||
		prefix.ViewReads.Total() != naive.ViewReads.Total() {
		t.Errorf("ViewReads: prefix %v, naive %v",
			prefix.ViewReads.Summary(), naive.ViewReads.Summary())
	}
	if !reflect.DeepEqual(prefix.Races, naive.Races) {
		t.Errorf("Races:\nprefix: %v\nnaive:  %v", prefix.Races, naive.Races)
	}
	if fmt.Sprint(prefix.Failures) != fmt.Sprint(naive.Failures) {
		t.Errorf("Failures:\nprefix: %v\nnaive:  %v", prefix.Failures, naive.Failures)
	}
}

// The prefix-sharing sweep must be observationally indistinguishable from
// the naive per-specification sweep on every corpus program, serial and
// parallel — the correctness contract that lets it be the default path.
func TestSweepPrefixEquivalence(t *testing.T) {
	for _, e := range corpus.All() {
		t.Run(e.Name, func(t *testing.T) {
			for _, workers := range []int{1, 4, 8} {
				prefix := sweepEntry(e, SweepOptions{Workers: workers})
				naive := sweepEntry(e, SweepOptions{Workers: workers, Naive: true})
				if prefix.Stats.Strategy != "prefix" {
					t.Fatalf("default sweep took strategy %q, want prefix", prefix.Stats.Strategy)
				}
				if naive.Stats.Strategy != "naive" {
					t.Fatalf("Naive sweep took strategy %q, want naive", naive.Stats.Strategy)
				}
				requireEquivalent(t, prefix, naive)
			}
		})
	}
}

// Budget aborts must land identically on both paths: the guard wraps the
// gate, so a prefix unit counts the full event stream — suppressed prefix
// included — and fails on the same event with the same error text as the
// naive run of the same specification.
func TestSweepPrefixEquivalenceUnderBudget(t *testing.T) {
	for _, e := range corpus.All() {
		t.Run(e.Name, func(t *testing.T) {
			for _, budget := range []int64{40, 400} {
				prefix := sweepEntry(e, SweepOptions{Workers: 4, EventBudget: budget})
				naive := sweepEntry(e, SweepOptions{Workers: 4, EventBudget: budget, Naive: true})
				requireEquivalent(t, prefix, naive)
			}
		})
	}
}

// Fault injection addresses runs by specification index, which has no
// meaning for a shared-prefix unit covering many specifications — so a
// wrapped sweep must fall back to the naive path, and a sweep requested
// without the Naive flag must still match one requested with it.
func TestSweepPrefixEquivalenceUnderFaults(t *testing.T) {
	e := mustEntry(t, "figure1-shallow-copy")
	for _, plan := range faults.Plans(7, 6, 400) {
		t.Run(plan.String(), func(t *testing.T) {
			wrap := func(index int, _ cilk.StealSpec, hooks cilk.Hooks) cilk.Hooks {
				if index%3 == 0 { // fault a third of the units, spare the rest
					return faults.New(hooks, plan)
				}
				return hooks
			}
			def := sweepEntry(e, SweepOptions{Workers: 4, Wrap: wrap})
			naive := sweepEntry(e, SweepOptions{Workers: 4, Wrap: wrap, Naive: true})
			if def.Stats.Strategy != "naive" {
				t.Fatalf("wrapped sweep took strategy %q, want naive fallback", def.Stats.Strategy)
			}
			requireEquivalent(t, def, naive)
		})
	}
}

// Sampling is part of the equivalence contract: a sampled sweep must pick
// the identical coverage-guided subset on the naive and the prefix path,
// at any worker count, and report the deterministic sampling stats on
// both. Every race a sampled sweep reports must also appear in the full
// sweep (sampling runs fewer schedules; it never invents findings).
func TestSweepSampledEquivalence(t *testing.T) {
	for _, e := range corpus.All() {
		t.Run(e.Name, func(t *testing.T) {
			full := sweepEntry(e, SweepOptions{Workers: 4})
			total := full.Stats.SpecsTotal
			n := total/2 + 1
			prefix := sweepEntry(e, SweepOptions{Workers: 8, SampleSpecs: n, SampleSeed: 11})
			naive := sweepEntry(e, SweepOptions{Workers: 1, SampleSpecs: n, SampleSeed: 11, Naive: true})
			requireEquivalent(t, prefix, naive)
			if n >= total {
				return // family too small to sample below full coverage
			}
			for _, cr := range []*CoverageResult{prefix, naive} {
				st := cr.Stats
				if !st.Sampled || st.SpecsTotal != total || st.Confidence == "" {
					t.Errorf("%s sampling stats not reported: %+v", st.Strategy, st)
				}
				if st.CoverageFraction <= 0 || st.CoverageFraction >= 1 {
					t.Errorf("%s coverage fraction %v, want in (0,1)", st.Strategy, st.CoverageFraction)
				}
			}
			if prefix.SpecsRun+len(prefix.Failures) > n {
				t.Errorf("sampled sweep settled %d specs, cap was %d",
					prefix.SpecsRun+len(prefix.Failures), n)
			}
			known := make(map[string]bool)
			for _, f := range full.Races {
				known[f.Race.String()] = true
			}
			for _, f := range prefix.Races {
				if !known[f.Race.String()] {
					t.Errorf("sampled sweep invented race %v", f.Race)
				}
			}
		})
	}
}

// A prefix sweep of the family should run far fewer live units than the
// family has specifications: groups collapse stream-identical specs, and
// snapshot seeding skips shared-prefix events. This pins the mechanism
// (not the wall-clock win, which bench tables measure).
func TestSweepPrefixActuallyShares(t *testing.T) {
	e := mustEntry(t, "reduce-strand-race-hidden")
	cr := sweepEntry(e, SweepOptions{Workers: 4})
	specs := cr.SpecsRun
	st := cr.Stats
	if st.Strategy != "prefix" {
		t.Fatalf("strategy = %q, want prefix", st.Strategy)
	}
	if st.Groups >= specs {
		t.Errorf("no spec dedup: %d groups for %d specs", st.Groups, specs)
	}
	if st.SnapshotHits == 0 {
		t.Errorf("no unit was seeded from a snapshot (hits=0, misses=%d)", st.SnapshotMisses)
	}
	if st.EventsSkipped == 0 {
		t.Errorf("no events were skipped; prefix sharing did no work")
	}
	units := st.SnapshotHits + st.SnapshotMisses
	if units != int64(st.Groups) {
		t.Errorf("ran %d units for %d groups; each group must run exactly once", units, st.Groups)
	}
}

func mustEntry(t *testing.T, name string) corpus.Entry {
	t.Helper()
	for _, e := range corpus.All() {
		if e.Name == name {
			return e
		}
	}
	t.Fatalf("corpus entry %q not found", name)
	return corpus.Entry{}
}
