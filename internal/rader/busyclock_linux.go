//go:build linux

package rader

import (
	"syscall"
	"time"
	"unsafe"
)

// clockThreadCPUTime is CLOCK_THREAD_CPUTIME_ID from <time.h>: the CPU
// time consumed by the calling thread alone.
const clockThreadCPUTime = 3

// threadCPU reads the calling thread's consumed CPU time. The worker
// loop bills units with deltas of this clock instead of wall time, so a
// lane's busy total excludes time it spent preempted — on an
// oversubscribed host (8 workers on 1 core) wall-time billing would make
// every lane look busy for the whole sweep and the critical path
// meaningless. Callers must be pinned with runtime.LockOSThread for
// deltas to be coherent.
func threadCPU() (time.Duration, bool) {
	var ts syscall.Timespec
	_, _, errno := syscall.Syscall(syscall.SYS_CLOCK_GETTIME, clockThreadCPUTime, uintptr(unsafe.Pointer(&ts)), 0)
	if errno != 0 {
		return 0, false
	}
	return time.Duration(ts.Sec)*time.Second + time.Duration(ts.Nsec), true
}
