package rader_test

import (
	"fmt"

	"repro/internal/cilk"
	"repro/internal/mem"
	"repro/internal/rader"
	"repro/internal/reducer"
)

// Example runs SP+ on a program whose reducer Update writes a location
// that a spawned sibling reads: clean on the serial schedule, racy once
// the continuation is stolen onto a parallel view.
func Example() {
	al := mem.NewAllocator()
	x := al.Alloc("shared", 1)
	prog := func(c *cilk.Ctx) {
		h := reducer.New[int](c, "sum", reducer.OpAdd[int](), 0)
		c.Spawn("reader", func(cc *cilk.Ctx) { cc.Load(x.At(0)) })
		h.Update(c, func(cc *cilk.Ctx, v int) int {
			cc.Store(x.At(0))
			return v + 1
		})
		c.Sync()
	}

	serial := rader.MustRun(prog, rader.Config{Detector: rader.SPPlus})
	fmt.Println("serial:", serial.Report.Summary())

	stolen := rader.MustRun(prog, rader.Config{Detector: rader.SPPlus, Spec: cilk.StealAll{}})
	fmt.Println("stolen:", stolen.Report.Distinct(), "distinct race(s)")

	// Output:
	// serial: no races detected
	// stolen: 1 distinct race(s)
}

// ExampleCoverage sweeps the §7 specification family over a rerunnable
// program, finding races no single schedule is guaranteed to show.
func ExampleCoverage() {
	al := mem.NewAllocator()
	x := al.Alloc("shared", 1)
	prog := func(c *cilk.Ctx) {
		h := reducer.New[int](c, "sum", reducer.OpAdd[int](), 0)
		c.Spawn("reader", func(cc *cilk.Ctx) { cc.Load(x.At(0)) })
		h.Update(c, func(cc *cilk.Ctx, v int) int {
			cc.Store(x.At(0))
			return v + 1
		})
		c.Sync()
	}
	cr := rader.Coverage(prog)
	fmt.Println("clean:", cr.Clean())
	fmt.Println("findings:", len(cr.Races))
	// Output:
	// clean: false
	// findings: 1
}
