package rader

import (
	"strings"
	"testing"

	"repro/internal/apps"
	"repro/internal/mem"
)

// TestCoverageSweepOnBenchmarks runs the full §7 specification sweep on
// each evaluation benchmark at test scale: the five ostensibly
// deterministic ones must come out clean across every generated
// specification, and pbfs's findings must all be its known benign
// distance-array races.
func TestCoverageSweepOnBenchmarks(t *testing.T) {
	if testing.Short() {
		t.Skip("runs hundreds of analysed executions")
	}
	for _, app := range apps.All() {
		app := app
		t.Run(app.Name, func(t *testing.T) {
			al := mem.NewAllocator()
			ins := app.Build(al, apps.Test)
			cr := Coverage(ins.Prog)
			if cr.SpecsRun < 2 {
				t.Fatalf("sweep ran only %d specs", cr.SpecsRun)
			}
			if !cr.ViewReads.Empty() {
				t.Fatalf("view-read races in a benchmark:\n%s", cr.ViewReads.Summary())
			}
			if app.Name == "pbfs" {
				for _, f := range cr.Races {
					if d := al.Describe(f.Race.Addr); !strings.HasPrefix(d, "dist") {
						t.Fatalf("pbfs race outside dist region: %v at %s (spec %s)",
							f.Race, d, f.Spec)
					}
				}
				if len(cr.Races) == 0 {
					t.Fatal("pbfs's benign distance races should surface under some spec")
				}
				return
			}
			if len(cr.Races) != 0 {
				t.Fatalf("%s must be race-free across the sweep; found %d, first: [%s] %v",
					app.Name, len(cr.Races), cr.Races[0].Spec, cr.Races[0].Race)
			}
		})
	}
}
