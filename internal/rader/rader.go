// Package rader is the tool layer tying programs, schedules and detectors
// together — the Go analogue of the paper's Rader prototype (§8). It runs
// a Cilk program under a chosen detector and steal specification, returns
// the race report together with the stolen-continuation labels needed to
// replay the schedule, and drives the §7 coverage sweep that checks every
// execution of an ostensibly deterministic program by running SP+ once per
// generated specification.
package rader

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/cilk"
	"repro/internal/core"
	"repro/internal/ehlabel"
	"repro/internal/offsetspan"
	"repro/internal/peerset"
	"repro/internal/sched"
	"repro/internal/spbags"
	"repro/internal/specgen"
	"repro/internal/spplus"
)

// DetectorName selects the analysis run alongside the program.
type DetectorName string

// The available analyses. None and EmptyTool are the two baselines of the
// evaluation: no instrumentation at all, and instrumentation calling no-op
// hooks.
const (
	None      DetectorName = "none"
	EmptyTool DetectorName = "empty"
	PeerSet   DetectorName = "peer-set"
	SPBags    DetectorName = "sp-bags"
	SPPlus    DetectorName = "sp+"
	// OffsetSpan is the Mellor-Crummey labeling detector of §9's related
	// work, included as a second reducer-oblivious baseline.
	OffsetSpan DetectorName = "offset-span"
	// EnglishHebrew is the Nudler-Rudolph labeling detector, the earliest
	// scheme §9 surveys.
	EnglishHebrew DetectorName = "english-hebrew"
)

// ParseDetector validates a detector name.
func ParseDetector(s string) (DetectorName, error) {
	switch DetectorName(s) {
	case None, EmptyTool, PeerSet, SPBags, SPPlus, OffsetSpan, EnglishHebrew:
		return DetectorName(s), nil
	default:
		return "", fmt.Errorf("rader: unknown detector %q (have none, empty, peer-set, sp-bags, sp+, offset-span, english-hebrew)", s)
	}
}

// Config selects the analysis and schedule for one run.
type Config struct {
	Detector DetectorName
	Spec     cilk.StealSpec
}

// Outcome reports one analysed run.
type Outcome struct {
	Detector DetectorName
	Report   *core.Report // nil for None and EmptyTool
	Result   *cilk.Result
	Duration time.Duration
	// Stats holds the detector's disjoint-set accounting when available.
	Stats core.Stats
	// Replay is the textual steal specification reproducing this
	// schedule, reported alongside races for regression testing (§8).
	Replay string
}

// Run executes prog once under cfg.
func Run(prog func(*cilk.Ctx), cfg Config) *Outcome {
	var det core.Detector
	var hooks cilk.Hooks
	switch cfg.Detector {
	case None, "":
		hooks = nil
	case EmptyTool:
		hooks = cilk.Empty{}
	case PeerSet:
		det = peerset.New()
		hooks = det
	case SPBags:
		det = spbags.New()
		hooks = det
	case SPPlus:
		det = spplus.New()
		hooks = det
	case OffsetSpan:
		det = offsetspan.New()
		hooks = det
	case EnglishHebrew:
		det = ehlabel.New()
		hooks = det
	default:
		panic(fmt.Sprintf("rader: bad detector %q", cfg.Detector))
	}
	start := time.Now()
	res := cilk.Run(prog, cilk.Config{Spec: cfg.Spec, Hooks: hooks})
	dur := time.Since(start)
	out := &Outcome{
		Detector: cfg.Detector,
		Result:   res,
		Duration: dur,
		Replay:   sched.Format(sched.FromSteals(res.Steals, orderOf(cfg.Spec))),
	}
	if det != nil {
		out.Report = det.Report()
		if sp, ok := det.(core.StatsProvider); ok {
			out.Stats = sp.Stats()
		}
	}
	return out
}

func orderOf(spec cilk.StealSpec) cilk.ReduceOrder {
	if spec == nil {
		return cilk.ReduceAtSync
	}
	return spec.Order()
}

// CoverageFinding records which specification elicited a race.
type CoverageFinding struct {
	Spec string
	Race core.Race
}

// CoverageResult summarizes a §7 sweep.
type CoverageResult struct {
	Profile   specgen.Profile
	SpecsRun  int
	ViewReads *core.Report // Peer-Set result (schedule-independent)
	// Races holds one representative finding per distinct determinacy
	// race, with the specification that elicited it.
	Races []CoverageFinding
	total int
}

// Clean reports whether the sweep found nothing.
func (cr *CoverageResult) Clean() bool {
	return cr.ViewReads.Empty() && len(cr.Races) == 0
}

// TotalReports counts raw race reports across the sweep.
func (cr *CoverageResult) TotalReports() int { return cr.total }

// Coverage performs the paper's full §7 check of an ostensibly
// deterministic program: one Peer-Set run for view-read races (the
// detector is schedule-independent) and one SP+ run per specification in
// the Θ(M + K³) family, checking every execution for determinacy races
// that involve a view-oblivious strand. prog must be rerunnable.
func Coverage(prog func(*cilk.Ctx)) *CoverageResult {
	return sweep(func() func(*cilk.Ctx) { return prog }, 1)
}

// CoverageParallel is Coverage with the per-specification SP+ runs spread
// across workers goroutines — the sweep is embarrassingly parallel since
// each specification analyses an independent execution. Because program
// instances usually carry mutable workload state, the caller supplies a
// factory producing a fresh, independent instance per run; instances must
// allocate identical address layouts (e.g. a fresh mem.Allocator each) so
// findings from different runs describe the same locations.
func CoverageParallel(factory func() func(*cilk.Ctx), workers int) *CoverageResult {
	if workers < 1 {
		workers = 1
	}
	return sweep(factory, workers)
}

func sweep(factory func() func(*cilk.Ctx), workers int) *CoverageResult {
	cr := &CoverageResult{}
	cr.Profile = specgen.Measure(factory())

	ps := Run(factory(), Config{Detector: PeerSet})
	cr.ViewReads = ps.Report

	specs := specgen.All(cr.Profile)
	type specResult struct {
		spec  string
		races []core.Race
		total int
	}
	results := make([]specResult, len(specs))
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				out := Run(factory(), Config{Detector: SPPlus, Spec: specs[i]})
				results[i] = specResult{
					spec:  sched.Format(specs[i]),
					races: out.Report.Races(),
					total: out.Report.Total(),
				}
			}
		}()
	}
	for i := range specs {
		next <- i
	}
	close(next)
	wg.Wait()

	seen := make(map[string]bool)
	for _, res := range results {
		cr.SpecsRun++
		cr.total += res.total
		for _, race := range res.races {
			key := race.String()
			if !seen[key] {
				seen[key] = true
				cr.Races = append(cr.Races, CoverageFinding{Spec: res.spec, Race: race})
			}
		}
	}
	return cr
}
