// Package rader is the tool layer tying programs, schedules and detectors
// together — the Go analogue of the paper's Rader prototype (§8). It runs
// a Cilk program under a chosen detector and steal specification, returns
// the race report together with the stolen-continuation labels needed to
// replay the schedule, and drives the §7 coverage sweep that checks every
// execution of an ostensibly deterministic program by running SP+ once per
// generated specification.
//
// The layer is hardened: Run recovers panics out of the program or the
// analysis into typed *streamerr.Error values, enforces an optional
// per-run event budget and deadline, and the sweep isolates each
// specification so one poisoned run degrades into a CoverageResult.Failures
// entry instead of killing the whole multi-hundred-execution sweep.
package rader

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/cilk"
	"repro/internal/core"
	"repro/internal/depa"
	"repro/internal/ehlabel"
	"repro/internal/obs"
	"repro/internal/offsetspan"
	"repro/internal/peerset"
	"repro/internal/sched"
	"repro/internal/spbags"
	"repro/internal/specgen"
	"repro/internal/spplus"
	"repro/internal/streamerr"
)

// DetectorName selects the analysis run alongside the program.
type DetectorName string

// The available analyses. None and EmptyTool are the two baselines of the
// evaluation: no instrumentation at all, and instrumentation calling no-op
// hooks.
const (
	None      DetectorName = "none"
	EmptyTool DetectorName = "empty"
	PeerSet   DetectorName = "peer-set"
	SPBags    DetectorName = "sp-bags"
	SPPlus    DetectorName = "sp+"
	// OffsetSpan is the Mellor-Crummey labeling detector of §9's related
	// work, included as a second reducer-oblivious baseline.
	OffsetSpan DetectorName = "offset-span"
	// EnglishHebrew is the Nudler-Rudolph labeling detector, the earliest
	// scheme §9 surveys.
	EnglishHebrew DetectorName = "english-hebrew"
	// Depa is the order-maintenance detector: DePa-style (depth,
	// fork-path) strand timestamps with a sharded parallel detection
	// phase. Verdicts are byte-identical to SP-bags; it additionally
	// reports parallel-machinery statistics.
	Depa DetectorName = "depa"
	// All runs the paper's three detectors — Peer-Set, SP-bags and SP+ —
	// over a single execution (or a single trace decode) in one pass,
	// producing a merged Outcome with one report per detector.
	All DetectorName = "all"
)

// AllDetectors is the canonical detector order of an All run; every
// merged outcome, report document and cache layout lists detectors in
// this order.
var AllDetectors = []DetectorName{PeerSet, SPBags, SPPlus}

// ParseDetector validates a detector name.
func ParseDetector(s string) (DetectorName, error) {
	switch DetectorName(s) {
	case None, EmptyTool, PeerSet, SPBags, SPPlus, OffsetSpan, EnglishHebrew, Depa, All:
		return DetectorName(s), nil
	default:
		return "", fmt.Errorf("rader: unknown detector %q (have none, empty, peer-set, sp-bags, sp+, offset-span, english-hebrew, depa, all)", s)
	}
}

// Config selects the analysis, schedule and resource limits for one run.
type Config struct {
	Detector DetectorName
	Spec     cilk.StealSpec
	// EventBudget aborts the run with a StreamBudget error once the
	// instrumentation stream exceeds this many events (0 = unlimited).
	EventBudget int64
	// Deadline aborts the run with a StreamDeadline error once the clock
	// passes it (zero time = no deadline). The check is amortized over
	// events, so a run with no instrumentation is not interrupted.
	Deadline time.Time
	// Wrap, when set, wraps the assembled hook chain (detector plus any
	// guard) before the run — the seam the fault-injection harness uses
	// to perturb the stream a detector sees.
	Wrap func(cilk.Hooks) cilk.Hooks
	// Trace, when set, collects a span per run phase (nil disables span
	// collection at zero cost — the obs nil fast path).
	Trace *obs.Trace
}

// Outcome reports one analysed run.
type Outcome struct {
	Detector DetectorName
	Report   *core.Report // nil for None and EmptyTool
	Result   *cilk.Result
	Duration time.Duration
	// Stats holds the detector's disjoint-set accounting when available.
	Stats core.Stats
	// Replay is the textual steal specification reproducing this
	// schedule, reported alongside races for regression testing (§8).
	Replay string
	// Counts is the detector's per-event-class accounting when available.
	Counts obs.EventCounts
	// Parallel holds the depa detector's parallel-machinery statistics
	// (nil for the other detectors).
	Parallel *depa.ParallelStats
	// All holds the per-detector outcomes of an All run, in AllDetectors
	// order. Report and Stats mirror the first entry so callers that only
	// look at the merged Outcome still see a verdict.
	All []DetectorOutcome
}

// DetectorOutcome is one detector's verdict within a merged All run.
type DetectorOutcome struct {
	Detector DetectorName
	Report   *core.Report
	Stats    core.Stats
	Counts   obs.EventCounts
}

// NewDetector constructs a fresh instance of the named detector. The two
// baselines have no analysis: None yields (nil, nil, nil) and EmptyTool
// yields no-op hooks with a nil detector. Every other name yields a
// detector that doubles as the hook chain to attach.
func NewDetector(name DetectorName) (core.Detector, cilk.Hooks, error) {
	switch name {
	case None, "":
		return nil, nil, nil
	case EmptyTool:
		return nil, cilk.Empty{}, nil
	case PeerSet:
		d := peerset.New()
		return d, d, nil
	case SPBags:
		d := spbags.New()
		return d, d, nil
	case SPPlus:
		d := spplus.New()
		return d, d, nil
	case OffsetSpan:
		d := offsetspan.New()
		return d, d, nil
	case EnglishHebrew:
		d := ehlabel.New()
		return d, d, nil
	case Depa:
		d := depa.New()
		return d, d, nil
	default:
		return nil, nil, fmt.Errorf("rader: bad detector %q", name)
	}
}

// NewAllDetectors constructs fresh instances of the paper's three
// detectors in AllDetectors order, for callers that drive a trace replay
// themselves (each detector doubles as its cilk.Hooks chain).
func NewAllDetectors() []core.Detector {
	dets := make([]core.Detector, len(AllDetectors))
	for i, name := range AllDetectors {
		d, _, err := NewDetector(name)
		if err != nil || d == nil {
			panic(fmt.Sprintf("rader: AllDetectors contains non-detector %q", name))
		}
		dets[i] = d
	}
	return dets
}

// Run executes prog once under cfg. A panic out of the program, the
// detector, or the budget/deadline guard is recovered and returned as a
// *streamerr.Error; the process never dies on a misbehaving run.
func Run(prog func(*cilk.Ctx), cfg Config) (out *Outcome, err error) {
	if cfg.Detector == All {
		return RunDetectors(prog, AllDetectors, cfg)
	}
	det, hooks, err := NewDetector(cfg.Detector)
	if err != nil {
		return nil, err
	}
	if dd, ok := det.(*depa.Detector); ok {
		dd.Trace = cfg.Trace
	}
	if cfg.EventBudget > 0 || !cfg.Deadline.IsZero() {
		hooks = newGuard(hooks, cfg.EventBudget, cfg.Deadline)
	}
	if cfg.Wrap != nil {
		hooks = cfg.Wrap(hooks)
	}
	defer func() {
		if p := recover(); p != nil {
			out = nil
			err = streamerr.FromPanic("rader", p)
		}
	}()
	span := cfg.Trace.Start("run:" + string(cfg.Detector))
	start := time.Now()
	res := cilk.Run(prog, cilk.Config{Spec: cfg.Spec, Hooks: hooks})
	dur := time.Since(start)
	out = &Outcome{
		Detector: cfg.Detector,
		Result:   res,
		Duration: dur,
		Replay:   sched.Format(sched.FromSteals(res.Steals, orderOf(cfg.Spec))),
	}
	span.Arg("frames", res.Frames).Arg("spawns", res.Spawns).
		Arg("loads", res.Loads).Arg("stores", res.Stores)
	if det != nil {
		out.Report = det.Report()
		if sp, ok := det.(core.StatsProvider); ok {
			out.Stats = sp.Stats()
		}
		if ec, ok := det.(core.EventCountsProvider); ok {
			out.Counts = ec.EventCounts()
		}
		if pp, ok := det.(depa.ParallelStatsProvider); ok {
			ps := pp.ParallelStats()
			out.Parallel = &ps
		}
		span.Arg("races", out.Report.Distinct())
	}
	span.End()
	return out, nil
}

// RunDetectors executes prog once with every named detector attached to
// the same hook stream via cilk.MultiHooks — the live-run counterpart of
// trace.ReplayAll. The budget/deadline guard and cfg.Wrap enclose the
// whole fan-out, so a guard abort or injected fault is observed (or not)
// by all detectors identically. The merged Outcome carries Detector ==
// All when names is the canonical set, per-detector verdicts in All, and
// the first detector's Report/Stats as its headline verdict.
func RunDetectors(prog func(*cilk.Ctx), names []DetectorName, cfg Config) (out *Outcome, err error) {
	dets := make([]core.Detector, 0, len(names))
	chains := make([]cilk.Hooks, 0, len(names))
	for _, name := range names {
		det, hooks, err := NewDetector(name)
		if err != nil {
			return nil, err
		}
		if det == nil {
			return nil, fmt.Errorf("rader: detector %q has no analysis to fan out", name)
		}
		dets = append(dets, det)
		chains = append(chains, hooks)
	}
	hooks := cilk.MultiHooks(chains...)
	if cfg.EventBudget > 0 || !cfg.Deadline.IsZero() {
		hooks = newGuard(hooks, cfg.EventBudget, cfg.Deadline)
	}
	if cfg.Wrap != nil {
		hooks = cfg.Wrap(hooks)
	}
	defer func() {
		if p := recover(); p != nil {
			out = nil
			err = streamerr.FromPanic("rader", p)
		}
	}()
	span := cfg.Trace.Start("run:all")
	start := time.Now()
	res := cilk.Run(prog, cilk.Config{Spec: cfg.Spec, Hooks: hooks})
	dur := time.Since(start)
	out = &Outcome{
		Detector: All,
		Result:   res,
		Duration: dur,
		Replay:   sched.Format(sched.FromSteals(res.Steals, orderOf(cfg.Spec))),
		All:      make([]DetectorOutcome, len(dets)),
	}
	span.Arg("frames", res.Frames).Arg("spawns", res.Spawns).
		Arg("loads", res.Loads).Arg("stores", res.Stores).End()
	for i, det := range dets {
		// The fan-out shares one execution, so per-detector wall time is
		// not separable; each detector still gets a zero-length span at the
		// collection point carrying its verdict and event accounting.
		dspan := cfg.Trace.Start("detector:" + det.Name())
		do := DetectorOutcome{Detector: names[i], Report: det.Report()}
		if sp, ok := det.(core.StatsProvider); ok {
			do.Stats = sp.Stats()
		}
		if ec, ok := det.(core.EventCountsProvider); ok {
			do.Counts = ec.EventCounts()
			for _, a := range do.Counts.Args() {
				dspan.Arg(a.Key, a.Value)
			}
		}
		dspan.Arg("races", do.Report.Distinct()).End()
		out.All[i] = do
	}
	if len(out.All) > 0 {
		out.Report = out.All[0].Report
		out.Stats = out.All[0].Stats
		out.Counts = out.All[0].Counts
	}
	return out, nil
}

// MustRun is Run for callers that know the run cannot fail (a live
// program under no budget or injection): it panics on error.
func MustRun(prog func(*cilk.Ctx), cfg Config) *Outcome {
	out, err := Run(prog, cfg)
	if err != nil {
		panic(err)
	}
	return out
}

func orderOf(spec cilk.StealSpec) cilk.ReduceOrder {
	if spec == nil {
		return cilk.ReduceAtSync
	}
	return spec.Order()
}

// CoverageFinding records which specification elicited a race.
type CoverageFinding struct {
	Spec string
	Race core.Race
}

// SpecFailure records one sweep unit that failed instead of producing a
// verdict: the specification (or pseudo-stage "profile" / "peer-set") and
// the typed error explaining why.
type SpecFailure struct {
	Spec string
	Err  error
}

// String implements fmt.Stringer.
func (sf SpecFailure) String() string { return fmt.Sprintf("[%s] %v", sf.Spec, sf.Err) }

// CoverageResult summarizes a §7 sweep.
type CoverageResult struct {
	Profile   specgen.Profile
	SpecsRun  int
	ViewReads *core.Report // Peer-Set result (schedule-independent)
	// Races holds one representative finding per distinct determinacy
	// race, with the specification that elicited it.
	Races []CoverageFinding
	// Failures lists sweep units that produced an error instead of a
	// verdict: a poisoned specification, a budget or deadline abort, a
	// panicking program. The remaining specifications' results are still
	// reported — a sweep degrades, it does not die.
	Failures []SpecFailure
	// Stats accounts for how the sweep executed (prefix sharing vs naive,
	// snapshot and copy-on-write counters). It is diagnostic, not part of
	// the canonical verdict: two equivalent sweeps may differ here.
	Stats SweepStats
	total int
}

// Clean reports whether the sweep found no race. A sweep with Failures
// can still be Clean; use Complete to check that every unit ran.
func (cr *CoverageResult) Clean() bool {
	return cr.ViewReads.Empty() && len(cr.Races) == 0
}

// Complete reports whether every sweep unit produced a verdict.
func (cr *CoverageResult) Complete() bool { return len(cr.Failures) == 0 }

// TotalReports counts raw race reports across the sweep.
func (cr *CoverageResult) TotalReports() int { return cr.total }

// SweepOptions configures a hardened §7 sweep.
type SweepOptions struct {
	// Workers is the number of goroutines running per-specification SP+
	// analyses (<1 means 1).
	Workers int
	// EventBudget bounds each run's event stream (0 = unlimited).
	EventBudget int64
	// Timeout bounds the whole sweep. Specifications not finished (or not
	// started) by the deadline are reported in Failures as
	// deadline-exceeded; completed specifications keep their results.
	Timeout time.Duration
	// Wrap, when set, wraps the hook chain of the run for each
	// specification index — the fault-injection seam. Index -1 is the
	// Peer-Set pass. Wrapped sweeps always take the naive path: injection
	// is addressed per specification index, which has no meaning for a
	// shared-prefix unit covering many specifications at once.
	Wrap func(index int, spec cilk.StealSpec, hooks cilk.Hooks) cilk.Hooks
	// Naive forces the per-specification sweep, disabling prefix sharing.
	// The default sweep groups specifications by longest common prefix of
	// steal decisions and analyses each shared prefix once, seeding the
	// divergent suffixes from copy-on-write detector snapshots; both paths
	// produce byte-identical canonical CoverageResults.
	Naive bool
	// SampleSpecs, when positive and below the family size, caps how many
	// specifications the sweep runs: the budget-aware sampler
	// (specgen.SampleFamily) picks that many coverage-guided — stratified
	// by first-steal divergence point, always keeping the all-serial base
	// schedule — and the sweep reports Sampled, CoverageFraction and a
	// Confidence note in its Stats. Sampling is deterministic for a given
	// seed and applies identically to every sweep strategy, so naive and
	// prefix sweeps of a sampled family still produce byte-identical
	// canonical results.
	SampleSpecs int
	// SampleSeed seeds the sampler's shuffle (0 is a valid, fixed seed —
	// never wall-clock randomness, which would break result caching).
	SampleSeed uint64
	// Trace, when set, collects per-phase spans: "profile", "peer-set",
	// one "spec:<name>" per sweep unit (on the worker's lane), and
	// "collect" for the merge. Nil disables collection at zero cost.
	Trace *obs.Trace
	// OnProgress, when set, receives monotone progress snapshots: once
	// when the unit count is known, then after every resolved sweep unit.
	// Callbacks are serialized under the sweep's progress lock and must
	// not block — hand the snapshot to a channel or an obs.Progress and
	// return.
	OnProgress func(SweepProgress)
}

// SweepProgress is one monotone observation of a running sweep. Every
// field only grows. Races counts distinct races per resolved unit before
// cross-unit dedup, so it can exceed the final CoverageResult's count —
// it is a live signal, not the verdict.
type SweepProgress struct {
	UnitsDone     int
	UnitsTotal    int
	EventsSkipped int64
	PagesCopied   int64
	Races         int
}

// progressSink serializes OnProgress deliveries: accumulate under one
// mutex, emit the merged snapshot while still holding it so observers see
// a strictly monotone sequence. A nil sink is inert.
type progressSink struct {
	mu  sync.Mutex
	cur SweepProgress
	fn  func(SweepProgress)
}

func newProgressSink(fn func(SweepProgress)) *progressSink {
	if fn == nil {
		return nil
	}
	return &progressSink{fn: fn}
}

// start publishes the initial 0/total snapshot once the unit count is
// known.
func (p *progressSink) start(total int) {
	if p == nil {
		return
	}
	p.mu.Lock()
	p.cur.UnitsTotal = total
	p.fn(p.cur)
	p.mu.Unlock()
}

// unitDone folds one resolved unit (or several, for a deadline skip that
// settles a whole subtree) into the running totals and publishes.
func (p *progressSink) unitDone(units, races int, skipped, pages int64) {
	if p == nil {
		return
	}
	p.mu.Lock()
	p.cur.UnitsDone += units
	p.cur.Races += races
	p.cur.EventsSkipped += skipped
	p.cur.PagesCopied += pages
	p.fn(p.cur)
	p.mu.Unlock()
}

// Coverage performs the paper's full §7 check of an ostensibly
// deterministic program: one Peer-Set run for view-read races (the
// detector is schedule-independent) and one SP+ run per specification in
// the Θ(M + K³) family, checking every execution for determinacy races
// that involve a view-oblivious strand. prog must be rerunnable.
func Coverage(prog func(*cilk.Ctx)) *CoverageResult {
	return Sweep(func() func(*cilk.Ctx) { return prog }, SweepOptions{})
}

// CoverageParallel is Coverage with the per-specification SP+ runs spread
// across workers goroutines — the sweep is embarrassingly parallel since
// each specification analyses an independent execution. Because program
// instances usually carry mutable workload state, the caller supplies a
// factory producing a fresh, independent instance per run; instances must
// allocate identical address layouts (e.g. a fresh mem.Allocator each) so
// findings from different runs describe the same locations.
func CoverageParallel(factory func() func(*cilk.Ctx), workers int) *CoverageResult {
	return Sweep(factory, SweepOptions{Workers: workers})
}

// Sweep is the hardened §7 coverage sweep: CoverageParallel plus per-run
// panic isolation, an event budget, and an overall deadline. Each failing
// unit is reported in CoverageResult.Failures with its typed error while
// every other specification still contributes its verdict.
func Sweep(factory func() func(*cilk.Ctx), opts SweepOptions) *CoverageResult {
	workers := opts.Workers
	if workers < 1 {
		workers = 1
	}
	// All deadline arithmetic derives from this one monotonic reading, so a
	// wall-clock step mid-sweep cannot expire (or revive) the timeout.
	clock := newSweepClock(opts.Timeout)
	if !opts.Naive && opts.Wrap == nil {
		return sweepPrefix(factory, opts, workers, clock)
	}
	deadline := clock.deadline()
	wrapFor := func(i int, spec cilk.StealSpec) func(cilk.Hooks) cilk.Hooks {
		if opts.Wrap == nil {
			return nil
		}
		return func(h cilk.Hooks) cilk.Hooks { return opts.Wrap(i, spec, h) }
	}

	cr := &CoverageResult{ViewReads: &core.Report{}, Stats: SweepStats{Strategy: "naive", Workers: workers}}

	pspan := opts.Trace.Start("profile")
	var profile specgen.Profile
	var probes []specgen.ProbeRecord
	var err error
	if opts.SampleSpecs > 0 {
		// The coverage-guided sampler stratifies by first-steal probe, so a
		// sampled naive sweep records the probe sequence the prefix sweep
		// would — both strategies then select the identical subset.
		profile, probes, err = measureProbes(factory)
	} else {
		profile, err = measure(factory)
	}
	pspan.End()
	if err != nil {
		// Without a profile there is no specification family to sweep;
		// report the single failure and return an empty (but non-nil)
		// result rather than crashing.
		cr.Failures = append(cr.Failures, SpecFailure{Spec: "profile", Err: err})
		return cr
	}
	cr.Profile = profile

	fam := specgen.NewFamily(cr.Profile)
	sel := specgen.SampleFamily(fam, probes, opts.SampleSpecs, opts.SampleSeed)
	applySampleStats(&cr.Stats, fam.Len(), len(sel))
	specs := make([]cilk.StealSpec, len(sel))
	for i, idx := range sel {
		specs[i] = fam.At(idx)
	}
	sink := newProgressSink(opts.OnProgress)
	sink.start(len(specs))

	// Peer-Set is schedule-independent, so its verdict can ride along any
	// one execution. When nothing injects per-pass faults (opts.Wrap is the
	// seam addressing the standalone pass as index -1) and there is at
	// least one specification to run anyway, fold the Peer-Set analysis
	// into the first specification's SP+ run via RunDetectors — one
	// execution feeding both detectors instead of two executions. The
	// standalone pass remains for wrapped sweeps and spec-less programs.
	piggyback := opts.Wrap == nil && len(specs) > 0
	if !piggyback {
		psSpan := opts.Trace.Start("peer-set")
		ps, err := Run(factory(), Config{
			Detector: PeerSet, EventBudget: opts.EventBudget, Deadline: deadline,
			Wrap: wrapFor(-1, nil),
		})
		psSpan.End()
		if err != nil {
			cr.Failures = append(cr.Failures, SpecFailure{Spec: "peer-set", Err: err})
		} else {
			cr.ViewReads = ps.Report
		}
	}

	type specResult struct {
		spec      string
		races     []core.Race
		total     int
		err       error
		viewReads *core.Report // piggybacked Peer-Set verdict, first spec only
	}
	results := make([]specResult, len(specs))
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(lane int) {
			defer wg.Done()
			for i := range next {
				name := sched.Format(specs[i])
				span := opts.Trace.StartTID(lane, "spec:"+name)
				if clock.expired() {
					results[i] = specResult{spec: name, err: deadlineSkip()}
					span.Arg("skipped", "deadline").End()
					sink.unitDone(1, 0, 0, 0)
					continue
				}
				if piggyback && i == 0 {
					out, err := RunDetectors(factory(), []DetectorName{PeerSet, SPPlus}, Config{
						Spec:        specs[i],
						EventBudget: opts.EventBudget, Deadline: deadline,
					})
					if err != nil {
						results[i] = specResult{spec: name, err: err}
						span.Arg("error", err.Error()).End()
						sink.unitDone(1, 0, 0, 0)
						continue
					}
					results[i] = specResult{
						spec:      name,
						races:     out.All[1].Report.Races(),
						total:     out.All[1].Report.Total(),
						viewReads: out.All[0].Report,
					}
					span.Arg("races", out.All[1].Report.Distinct()).End()
					sink.unitDone(1, out.All[1].Report.Distinct(), 0, 0)
					continue
				}
				out, err := Run(factory(), Config{
					Detector: SPPlus, Spec: specs[i],
					EventBudget: opts.EventBudget, Deadline: deadline,
					Wrap: wrapFor(sel[i], specs[i]),
				})
				if err != nil {
					results[i] = specResult{spec: name, err: err}
					span.Arg("error", err.Error()).End()
					sink.unitDone(1, 0, 0, 0)
					continue
				}
				results[i] = specResult{
					spec:  name,
					races: out.Report.Races(),
					total: out.Report.Total(),
				}
				span.Arg("races", out.Report.Distinct()).End()
				sink.unitDone(1, out.Report.Distinct(), 0, 0)
			}
		}(w + 1)
	}
	for i := range specs {
		next <- i
	}
	close(next)
	wg.Wait()

	cspan := opts.Trace.Start("collect")
	seen := make(map[string]bool)
	for i, res := range results {
		if res.err != nil {
			if piggyback && i == 0 {
				// The combined run carried the Peer-Set pass too; its loss
				// must be visible under both names.
				cr.Failures = append(cr.Failures, SpecFailure{Spec: "peer-set", Err: res.err})
			}
			cr.Failures = append(cr.Failures, SpecFailure{Spec: res.spec, Err: res.err})
			continue
		}
		if res.viewReads != nil {
			cr.ViewReads = res.viewReads
		}
		cr.SpecsRun++
		cr.total += res.total
		for _, race := range res.races {
			key := race.String()
			if !seen[key] {
				seen[key] = true
				cr.Races = append(cr.Races, CoverageFinding{Spec: res.spec, Race: race})
			}
		}
	}
	cr.sortCanonical()
	cspan.Arg("specs", cr.SpecsRun).Arg("races", len(cr.Races)).
		Arg("failures", len(cr.Failures)).End()
	return cr
}

// sortCanonical puts findings and failures into spec order (ties broken by
// the race or error text) so a sweep's result — and any JSON rendering of
// it — is byte-identical regardless of worker count or completion order.
func (cr *CoverageResult) sortCanonical() {
	sort.SliceStable(cr.Races, func(i, j int) bool {
		if cr.Races[i].Spec != cr.Races[j].Spec {
			return cr.Races[i].Spec < cr.Races[j].Spec
		}
		return cr.Races[i].Race.String() < cr.Races[j].Race.String()
	})
	sort.SliceStable(cr.Failures, func(i, j int) bool {
		if cr.Failures[i].Spec != cr.Failures[j].Spec {
			return cr.Failures[i].Spec < cr.Failures[j].Spec
		}
		return fmt.Sprint(cr.Failures[i].Err) < fmt.Sprint(cr.Failures[j].Err)
	})
}

// measure profiles one program instance, containing any panic the program
// (or the profiler driving it) raises.
func measure(factory func() func(*cilk.Ctx)) (p specgen.Profile, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = streamerr.FromPanic("rader", r)
		}
	}()
	return specgen.Measure(factory()), nil
}
