package rader

import (
	"testing"

	"repro/internal/apps"
	"repro/internal/cilk"
	"repro/internal/mem"
)

// TestDSUWorkLinearInEvents checks the operation-count form of Theorems 1
// and 5: the number of disjoint-set operations a detector performs is
// linear in the number of instrumentation events, with the α factor inside
// each operation — so ops/event stays bounded by a small constant as the
// input grows.
func TestDSUWorkLinearInEvents(t *testing.T) {
	for _, det := range []DetectorName{PeerSet, SPBags, SPPlus} {
		var prev float64
		for i, scale := range []apps.Scale{apps.Test, apps.Small} {
			al := mem.NewAllocator()
			ins := apps.Fib().Build(al, scale)
			out := MustRun(ins.Prog, Config{Detector: det, Spec: cilk.StealAll{}})
			events := float64(out.Result.Loads + out.Result.Stores + out.Result.Reads +
				uint64(out.Result.Frames) + uint64(out.Result.Syncs) + uint64(out.Result.Reduces))
			opsPerEvent := float64(out.Stats.Finds+out.Stats.Unions) / events
			if opsPerEvent > 8 {
				t.Fatalf("%s scale %v: %.1f DSU ops per event — not O(1) per event", det, scale, opsPerEvent)
			}
			if i > 0 {
				// Growing the input must not grow the per-event cost by
				// more than a sliver (α is effectively constant).
				if opsPerEvent > prev*1.5 {
					t.Fatalf("%s: ops/event grew %f -> %f across scales", det, prev, opsPerEvent)
				}
			}
			prev = opsPerEvent
			if out.Stats.Elems == 0 {
				t.Fatalf("%s: no DSU elements recorded", det)
			}
		}
	}
}
