package rader

import (
	"time"

	"repro/internal/cilk"
	"repro/internal/mem"
	"repro/internal/streamerr"
)

// guard is a cilk.Hooks middleware enforcing a per-run event budget and a
// deadline. Hook signatures cannot return errors, so exceeding either
// limit panics with a *streamerr.Error, which Run's recovery translates
// into the typed error the caller sees. The deadline is polled every
// deadlineStride events to keep the hot path free of clock reads.
type guard struct {
	h        cilk.Hooks
	budget   int64 // 0 = unlimited
	deadline time.Time
	n        int64
}

const deadlineStride = 1024

// sweepClock anchors every deadline decision of one sweep to a single
// monotonic time reading, so per-unit expiry checks and the in-run guard
// deadline agree with each other and are immune to wall-clock steps.
type sweepClock struct {
	start   time.Time
	timeout time.Duration
}

func newSweepClock(timeout time.Duration) sweepClock {
	return sweepClock{start: time.Now(), timeout: timeout}
}

// expired reports whether the sweep's budgeted wall time has elapsed.
func (c sweepClock) expired() bool {
	return c.timeout > 0 && time.Since(c.start) >= c.timeout
}

// deadline returns the guard-facing absolute deadline (zero = none). The
// time carries the start's monotonic reading, so guard comparisons stay
// monotonic too.
func (c sweepClock) deadline() time.Time {
	if c.timeout <= 0 {
		return time.Time{}
	}
	return c.start.Add(c.timeout)
}

func newGuard(h cilk.Hooks, budget int64, deadline time.Time) *guard {
	if h == nil {
		h = cilk.Empty{}
	}
	return &guard{h: h, budget: budget, deadline: deadline}
}

func (g *guard) tick() {
	n := g.n
	g.n++
	if g.budget > 0 && g.n > g.budget {
		panic(streamerr.Errorf("rader", streamerr.KindBudget,
			"event budget %d exceeded", g.budget).WithEvent(n))
	}
	if !g.deadline.IsZero() && n%deadlineStride == 0 && time.Now().After(g.deadline) {
		panic(streamerr.Errorf("rader", streamerr.KindDeadline,
			"run deadline exceeded").WithEvent(n))
	}
}

// ProgramStart implements cilk.Hooks.
func (g *guard) ProgramStart(f *cilk.Frame) { g.tick(); g.h.ProgramStart(f) }

// ProgramEnd implements cilk.Hooks.
func (g *guard) ProgramEnd(f *cilk.Frame) { g.tick(); g.h.ProgramEnd(f) }

// FrameEnter implements cilk.Hooks.
func (g *guard) FrameEnter(f *cilk.Frame) { g.tick(); g.h.FrameEnter(f) }

// FrameReturn implements cilk.Hooks.
func (g *guard) FrameReturn(f, p *cilk.Frame) { g.tick(); g.h.FrameReturn(f, p) }

// Sync implements cilk.Hooks.
func (g *guard) Sync(f *cilk.Frame) { g.tick(); g.h.Sync(f) }

// ContinuationStolen implements cilk.Hooks.
func (g *guard) ContinuationStolen(f *cilk.Frame, vid cilk.ViewID) {
	g.tick()
	g.h.ContinuationStolen(f, vid)
}

// ReduceStart implements cilk.Hooks.
func (g *guard) ReduceStart(f *cilk.Frame, keep, die cilk.ViewID) {
	g.tick()
	g.h.ReduceStart(f, keep, die)
}

// ReduceEnd implements cilk.Hooks.
func (g *guard) ReduceEnd(f *cilk.Frame) { g.tick(); g.h.ReduceEnd(f) }

// ViewAwareBegin implements cilk.Hooks.
func (g *guard) ViewAwareBegin(f *cilk.Frame, op cilk.ViewOp, r *cilk.Reducer) {
	g.tick()
	g.h.ViewAwareBegin(f, op, r)
}

// ViewAwareEnd implements cilk.Hooks.
func (g *guard) ViewAwareEnd(f *cilk.Frame, op cilk.ViewOp, r *cilk.Reducer) {
	g.tick()
	g.h.ViewAwareEnd(f, op, r)
}

// ReducerCreate implements cilk.Hooks.
func (g *guard) ReducerCreate(f *cilk.Frame, r *cilk.Reducer) { g.tick(); g.h.ReducerCreate(f, r) }

// ReducerRead implements cilk.Hooks.
func (g *guard) ReducerRead(f *cilk.Frame, r *cilk.Reducer) { g.tick(); g.h.ReducerRead(f, r) }

// Load implements cilk.Hooks.
func (g *guard) Load(f *cilk.Frame, a mem.Addr) { g.tick(); g.h.Load(f, a) }

// Store implements cilk.Hooks.
func (g *guard) Store(f *cilk.Frame, a mem.Addr) { g.tick(); g.h.Store(f, a) }

var _ cilk.Hooks = (*guard)(nil)
