//go:build !linux

package rader

import "time"

// threadCPU is unavailable off Linux; the worker loop falls back to
// wall-time billing.
func threadCPU() (time.Duration, bool) { return 0, false }
