package rader

import (
	"errors"
	"testing"
	"time"

	"repro/internal/cilk"
	"repro/internal/mem"
	"repro/internal/progs"
	"repro/internal/streamerr"
)

func fig1() func(*cilk.Ctx) {
	return progs.Fig1(mem.NewAllocator(), progs.Fig1Options{})
}

func TestRunBadDetectorIsError(t *testing.T) {
	out, err := Run(fig1(), Config{Detector: "bogus"})
	if err == nil || out != nil {
		t.Fatalf("bad detector: out=%v err=%v, want nil+error", out, err)
	}
}

func TestRunRecoversProgramPanic(t *testing.T) {
	out, err := Run(func(c *cilk.Ctx) { panic("user code exploded") }, Config{Detector: SPPlus})
	if out != nil {
		t.Fatal("panicking program produced an outcome")
	}
	var se *streamerr.Error
	if !errors.As(err, &se) || se.Kind != streamerr.KindConsumer {
		t.Fatalf("got %v, want KindConsumer", err)
	}
}

func TestRunEventBudget(t *testing.T) {
	out, err := Run(fig1(), Config{Detector: SPPlus, Spec: cilk.StealAll{}, EventBudget: 10})
	if out != nil {
		t.Fatal("over-budget run produced an outcome")
	}
	var se *streamerr.Error
	if !errors.As(err, &se) || se.Kind != streamerr.KindBudget {
		t.Fatalf("got %v, want KindBudget", err)
	}
	if se.Event < 0 {
		t.Fatalf("budget error names no event: %v", se)
	}
	// A generous budget does not interfere.
	if _, err := Run(fig1(), Config{Detector: SPPlus, Spec: cilk.StealAll{}, EventBudget: 1 << 30}); err != nil {
		t.Fatalf("generous budget: %v", err)
	}
}

func TestRunDeadline(t *testing.T) {
	_, err := Run(fig1(), Config{
		Detector: SPPlus, Spec: cilk.StealAll{},
		Deadline: time.Now().Add(-time.Second),
	})
	var se *streamerr.Error
	if !errors.As(err, &se) || se.Kind != streamerr.KindDeadline {
		t.Fatalf("got %v, want KindDeadline", err)
	}
}

func TestMustRunPanicsOnError(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustRun swallowed the error")
		}
	}()
	MustRun(fig1(), Config{Detector: "bogus"})
}

func TestSweepDeadlineDegrades(t *testing.T) {
	factory := func() func(*cilk.Ctx) {
		return progs.Fig1(mem.NewAllocator(), progs.Fig1Options{DeepCopy: true})
	}
	// A 1ns timeout has always expired by the time the first deadline
	// poll happens; the whole sweep must degrade into deadline failures.
	cr := Sweep(factory, SweepOptions{Timeout: time.Nanosecond})
	if cr == nil {
		t.Fatal("expired sweep returned nil")
	}
	if cr.Complete() {
		t.Fatal("sweep past its deadline reports Complete")
	}
	if cr.SpecsRun != 0 {
		t.Fatalf("specs still ran past the deadline: %d", cr.SpecsRun)
	}
	for _, sf := range cr.Failures {
		var se *streamerr.Error
		if !errors.As(sf.Err, &se) || se.Kind != streamerr.KindDeadline {
			t.Fatalf("failure %v is not a deadline error", sf)
		}
	}
	if cr.ViewReads == nil {
		t.Fatal("ViewReads must stay non-nil on failure")
	}
}

func TestSweepPoisonedProfile(t *testing.T) {
	// A program that panics on its very first run poisons the profiling
	// stage; the sweep must report that single failure and return.
	cr := Sweep(func() func(*cilk.Ctx) {
		return func(c *cilk.Ctx) { panic("boom") }
	}, SweepOptions{})
	if len(cr.Failures) != 1 || cr.Failures[0].Spec != "profile" {
		t.Fatalf("failures = %v, want one profile failure", cr.Failures)
	}
	if cr.ViewReads == nil {
		t.Fatal("ViewReads must stay non-nil")
	}
	if cr.Clean() != true {
		t.Fatal("no race was found, result should read as clean (but incomplete)")
	}
}
