package rader

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cilk"
	"repro/internal/spplus"
)

// The work-stealing sweep scheduler. Each worker owns a deque of trie
// subtrees (sweep units) and runs the gated prefix-replay locally: the
// owner pushes and pops at the bottom, so its own traversal is
// depth-first — the unit it just forked children from is still hot, and
// its snapshot pages are still resident. An idle worker steals from the
// top of a victim's deque, which holds the *shallowest* pending subtree:
// the oldest fork point, covering the most leaf groups, so one steal
// moves the largest available slab of work and thieves go back to their
// own deques for as long as possible.
//
// A stolen unit carries its seed snapshot with it — the copy-on-write
// handoff: the victim captured the snapshot at the subtree's divergence
// probe, the thief restores from it and replays only the divergent
// suffix. Snapshots are refcounted; the last unit to restore from one
// retires its containers to that worker's free list, and the next capture
// on that worker reuses them via SnapshotInto. Detectors are pooled per
// worker the same way. The unit counter is a bare atomic (the lock-free
// termination detector); the deques are per-worker mutexes — sharded, so
// workers only contend when a steal actually happens.

// snapRef is a refcounted copy-on-write snapshot shared by the sibling
// units forked at one trie branch point.
type snapRef struct {
	snap *spplus.Snapshot
	refs atomic.Int32
}

func newSnapRef(snap *spplus.Snapshot, refs int) *snapRef {
	r := &snapRef{snap: snap}
	r.refs.Store(int32(refs))
	return r
}

// release drops one reference after a restore (or a deadline skip). The
// last releaser parks the snapshot's containers on its own worker's free
// list — safe because Restore copies state out of a snapshot, sharing
// only the immutable copy-on-write page buffers, which are never reused.
func (r *snapRef) release(w *sweepWorker) {
	if r == nil {
		return
	}
	if r.refs.Add(-1) == 0 {
		w.snapFree = append(w.snapFree, r.snap)
		r.snap = nil
	}
}

// sweepWorker is one scheduler lane: a deque of pending units plus the
// worker-local allocation pools the hot path draws from without locking.
type sweepWorker struct {
	id int

	mu    sync.Mutex
	deque []unitTask // [0] = shallowest (steal side), end = deepest (owner side)

	// detPool recycles detectors across this worker's units; snapFree
	// recycles retired snapshot containers for SnapshotInto. Both are
	// owner-only — no other worker touches them.
	detPool  sync.Pool
	gate     *cilk.Gate
	snapFree []*spplus.Snapshot

	// busy is this lane's total unit time: thread CPU time where the host
	// exposes it (Linux), per-unit wall time elsewhere. CPU billing keeps
	// the critical path meaningful when lanes outnumber cores.
	busy   time.Duration
	pooled int // PagesPooled of the last detector this worker retired
}

// takeSnap pops a recycled snapshot container, nil when the list is dry
// (SnapshotInto then allocates fresh).
func (w *sweepWorker) takeSnap() *spplus.Snapshot {
	if n := len(w.snapFree); n > 0 {
		s := w.snapFree[n-1]
		w.snapFree = w.snapFree[:n-1]
		return s
	}
	return nil
}

// pop takes the deepest pending unit (owner side: LIFO, DFS locality).
func (w *sweepWorker) pop() (unitTask, bool) {
	w.mu.Lock()
	defer w.mu.Unlock()
	n := len(w.deque)
	if n == 0 {
		return unitTask{}, false
	}
	t := w.deque[n-1]
	w.deque[n-1] = unitTask{}
	w.deque = w.deque[:n-1]
	return t, true
}

// stealTop takes the shallowest pending unit (thief side: FIFO).
func (w *sweepWorker) stealTop() (unitTask, bool) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if len(w.deque) == 0 {
		return unitTask{}, false
	}
	t := w.deque[0]
	w.deque[0] = unitTask{}
	w.deque = w.deque[1:]
	return t, true
}

// wsSched coordinates the workers: a lock-free pending-unit counter for
// termination, and a condvar for parking idle workers between steals.
type wsSched struct {
	s       *prefixSweep
	workers []*sweepWorker

	pending          atomic.Int64
	steals, handoffs atomic.Int64

	mu   sync.Mutex
	cond *sync.Cond
	done bool
}

func newWSSched(s *prefixSweep, workers int) *wsSched {
	ws := &wsSched{s: s, workers: make([]*sweepWorker, workers)}
	ws.cond = sync.NewCond(&ws.mu)
	for i := range ws.workers {
		w := &sweepWorker{id: i, gate: cilk.NewGate(nil, false)}
		w.detPool.New = func() any { return spplus.New() }
		ws.workers[i] = w
	}
	return ws
}

// push makes t runnable on w's deque and wakes one parked worker. The
// pending increment precedes visibility, so the counter can never read
// zero while a pushed unit is still unclaimed.
func (ws *wsSched) push(w *sweepWorker, t unitTask) {
	ws.pending.Add(1)
	w.mu.Lock()
	w.deque = append(w.deque, t)
	w.mu.Unlock()
	ws.mu.Lock()
	ws.cond.Signal()
	ws.mu.Unlock()
}

// runAll runs one goroutine per worker until every unit has completed.
func (ws *wsSched) runAll() {
	var wg sync.WaitGroup
	for _, w := range ws.workers {
		wg.Add(1)
		go func(w *sweepWorker) {
			defer wg.Done()
			ws.run(w)
		}(w)
	}
	wg.Wait()
}

func (ws *wsSched) run(w *sweepWorker) {
	// Pin to an OS thread so threadCPU deltas across a unit are coherent.
	runtime.LockOSThread()
	defer runtime.UnlockOSThread()
	for {
		t, ok := ws.next(w)
		if !ok {
			return
		}
		cpu0, cpuOK := threadCPU()
		start := time.Now()
		ws.s.runUnit(t, w)
		if cpu1, ok := threadCPU(); cpuOK && ok {
			w.busy += cpu1 - cpu0
		} else {
			w.busy += time.Since(start)
		}
		if ws.pending.Add(-1) == 0 {
			ws.mu.Lock()
			ws.done = true
			ws.cond.Broadcast()
			ws.mu.Unlock()
			return
		}
	}
}

// next returns the worker's next unit: its own deepest, else the
// shallowest stolen from a victim (scanned round-robin from its right
// neighbor), else it parks until a push or termination. Parking cannot
// lose a wakeup: push appends before signaling under ws.mu, and the
// parker rescans every deque while holding ws.mu before waiting.
func (ws *wsSched) next(w *sweepWorker) (unitTask, bool) {
	for {
		if t, ok := w.pop(); ok {
			return t, true
		}
		for off := 1; off < len(ws.workers); off++ {
			v := ws.workers[(w.id+off)%len(ws.workers)]
			if t, ok := v.stealTop(); ok {
				ws.steals.Add(1)
				if t.snap != nil {
					ws.handoffs.Add(1)
				}
				return t, true
			}
		}
		ws.mu.Lock()
		for !ws.done && !ws.available() {
			ws.cond.Wait()
		}
		done := ws.done
		ws.mu.Unlock()
		if done {
			return unitTask{}, false
		}
	}
}

// available reports whether any deque holds a unit.
func (ws *wsSched) available() bool {
	for _, w := range ws.workers {
		w.mu.Lock()
		n := len(w.deque)
		w.mu.Unlock()
		if n > 0 {
			return true
		}
	}
	return false
}
