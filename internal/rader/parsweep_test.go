package rader

import (
	"errors"
	"reflect"
	"testing"
	"time"

	"repro/internal/cilk"
	"repro/internal/mem"
	"repro/internal/progs"
	"repro/internal/specgen"
	"repro/internal/streamerr"
)

// The deque contract the scheduler's locality story rests on: the owner
// pops the deepest (most recently pushed) unit, a thief steals the
// shallowest (oldest) one.
func TestDequeOwnerPopsDeepThiefStealsShallow(t *testing.T) {
	ws := newWSSched(nil, 1)
	w := ws.workers[0]
	for seq := 1; seq <= 3; seq++ {
		ws.push(w, unitTask{seedSeq: seq})
	}
	if tk, ok := w.pop(); !ok || tk.seedSeq != 3 {
		t.Fatalf("owner pop got seq %d (ok=%v), want deepest 3", tk.seedSeq, ok)
	}
	if tk, ok := w.stealTop(); !ok || tk.seedSeq != 1 {
		t.Fatalf("steal got seq %d (ok=%v), want shallowest 1", tk.seedSeq, ok)
	}
	if tk, ok := w.stealTop(); !ok || tk.seedSeq != 2 {
		t.Fatalf("second steal got seq %d (ok=%v), want 2", tk.seedSeq, ok)
	}
	if _, ok := w.pop(); ok {
		t.Fatal("pop succeeded on an empty deque")
	}
	if _, ok := w.stealTop(); ok {
		t.Fatal("steal succeeded on an empty deque")
	}
}

// Stealing the root unit is the one steal that moves the entire sweep —
// snapshot-less, carrying the Peer-Set piggyback with it. Running a
// two-worker scheduler on the thief's goroutine alone makes that steal
// deterministic: worker 1's deque is empty, so its first unit must come
// from worker 0, and every subsequent unit is its own. The stolen sweep
// must still resolve every group and carry the piggybacked verdict.
func TestRootUnitSteal(t *testing.T) {
	e := mustEntry(t, "figure1-shallow-copy")
	factory := func() func(*cilk.Ctx) { return e.Build(mem.NewAllocator()) }
	ref := sweepEntry(e, SweepOptions{Workers: 1})

	profile, probes, err := measureProbes(factory)
	if err != nil {
		t.Fatal(err)
	}
	fam := specgen.NewFamily(profile)
	sel := specgen.SampleFamily(fam, probes, 0, 0)
	var unitsDone int
	s := &prefixSweep{
		factory: factory,
		clock:   newSweepClock(0),
		fam:     fam, sel: sel,
		trie:     specgen.BuildTrieIndexed(len(sel), func(pos int) cilk.StealSpec { return fam.At(sel[pos]) }, probes),
		progress: newProgressSink(func(p SweepProgress) { unitsDone = p.UnitsDone }),
	}
	s.results = make([]groupResult, len(s.trie.Groups))
	s.progress.start(len(s.trie.Groups))
	ws := newWSSched(s, 2)
	s.sched = ws
	ws.push(ws.workers[0], unitTask{node: s.trie.Root, root: true})
	ws.run(ws.workers[1])

	if got := ws.steals.Load(); got != 1 {
		t.Errorf("steals = %d, want exactly the root steal", got)
	}
	if got := ws.handoffs.Load(); got != 0 {
		t.Errorf("handoffs = %d; the root unit carries no snapshot", got)
	}
	if unitsDone != len(s.trie.Groups) {
		t.Fatalf("resolved %d of %d groups", unitsDone, len(s.trie.Groups))
	}
	if s.psErr != nil {
		t.Fatalf("root unit failed: %v", s.psErr)
	}

	got, want := map[string]bool{}, map[string]bool{}
	var viewReads []string
	for g, res := range s.results {
		if res.err != nil {
			t.Fatalf("group %d failed: %v", g, res.err)
		}
		for _, r := range res.races {
			got[r.String()] = true
		}
		if res.viewReads != nil {
			for _, r := range res.viewReads.Races() {
				viewReads = append(viewReads, r.String())
			}
		}
	}
	for _, f := range ref.Races {
		want[f.Race.String()] = true
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("stolen sweep races differ from reference:\ngot  %v\nwant %v", got, want)
	}
	wantVR := []string(nil)
	for _, r := range ref.ViewReads.Races() {
		wantVR = append(wantVR, r.String())
	}
	if !reflect.DeepEqual(viewReads, wantVR) {
		t.Errorf("piggybacked Peer-Set verdict differs:\ngot  %v\nwant %v", viewReads, wantVR)
	}
}

// stealSensitive builds a program that is ostensibly deterministic but
// panics under any schedule that steals before the mid-loop reducer read:
// a stolen continuation runs on a fresh identity view, so the read
// observes fewer updates than the serial elision would. Specifications
// stealing at probe readAt or earlier fail mid-run, before the probes
// behind the read ever fire — exactly the situation where a prefix unit
// dies with branch subtrees still unspawned and must respawn them live.
func stealSensitive(k, readAt int) func(*cilk.Ctx) {
	return func(c *cilk.Ctx) {
		r := c.NewReducer("acc", progs.SumMonoid, 0)
		for i := 0; i < k; i++ {
			if i == readAt {
				if got := c.Value(r).(int); got != i {
					panic("partial reducer view observed")
				}
			}
			c.Spawn("w", func(c *cilk.Ctx) {
				c.Update(r, func(_ *cilk.Ctx, v any) any { return v.(int) + 1 })
			})
		}
		c.Sync()
	}
}

// A seeded unit that panics mid-run fails exactly its own group; the
// failure must land on the same specifications, with the same error text,
// as the naive sweep — at any worker count — and every group must still
// run exactly once.
func TestSweepPanicInSeededUnits(t *testing.T) {
	factory := func() func(*cilk.Ctx) { return stealSensitive(6, 3) }
	var byWorkers []*CoverageResult
	for _, workers := range []int{1, 8} {
		prefix := Sweep(factory, SweepOptions{Workers: workers})
		naive := Sweep(factory, SweepOptions{Workers: workers, Naive: true})
		if prefix.Stats.Strategy != "prefix" {
			t.Fatalf("strategy %q, want prefix", prefix.Stats.Strategy)
		}
		requireEquivalent(t, prefix, naive)
		if len(prefix.Failures) == 0 {
			t.Fatal("no specification panicked; the program is not steal-sensitive")
		}
		if prefix.SpecsRun == 0 {
			t.Fatal("every specification failed; the serial base schedule should survive")
		}
		st := prefix.Stats
		if units := st.SnapshotHits + st.SnapshotMisses; units != int64(st.Groups) {
			t.Errorf("ran %d units for %d groups; each group must run exactly once", units, st.Groups)
		}
		byWorkers = append(byWorkers, prefix)
	}
	if !reflect.DeepEqual(byWorkers[0].Races, byWorkers[1].Races) ||
		!reflect.DeepEqual(byWorkers[0].Failures, byWorkers[1].Failures) {
		t.Errorf("panicking sweep differs across worker counts:\n1 worker:  %v / %v\n8 workers: %v / %v",
			byWorkers[0].Races, byWorkers[0].Failures, byWorkers[1].Races, byWorkers[1].Failures)
	}
}

// When the root unit dies mid-spine (here: an event budget abort), the
// sibling subtrees behind its unreached branch points are respawned as
// snapshot-less live units — and a thief must be able to steal those like
// any other unit. Driving the scheduler by hand makes the scenario
// deterministic: worker 1 steals the root, the budget kills it after it
// pushed only some of its branches, then worker 0 steals from worker 1's
// deque — seeded siblings first (shallowest), then the respawns — and
// every group still settles exactly once.
func TestStealDuringFailedPrefixRespawn(t *testing.T) {
	e := mustEntry(t, "figure1-shallow-copy")
	factory := func() func(*cilk.Ctx) { return e.Build(mem.NewAllocator()) }
	profile, probes, err := measureProbes(factory)
	if err != nil {
		t.Fatal(err)
	}
	fam := specgen.NewFamily(profile)
	sel := specgen.SampleFamily(fam, probes, 0, 0)
	var unitsDone int
	s := &prefixSweep{
		factory: factory,
		opts:    SweepOptions{EventBudget: 20}, // aborts the root unit mid-spine
		clock:   newSweepClock(0),
		fam:     fam, sel: sel,
		trie:     specgen.BuildTrieIndexed(len(sel), func(pos int) cilk.StealSpec { return fam.At(sel[pos]) }, probes),
		progress: newProgressSink(func(p SweepProgress) { unitsDone = p.UnitsDone }),
	}
	s.results = make([]groupResult, len(s.trie.Groups))
	s.progress.start(len(s.trie.Groups))
	ws := newWSSched(s, 2)
	s.sched = ws
	ws.push(ws.workers[0], unitTask{node: s.trie.Root, root: true})

	rootT, ok := ws.workers[0].stealTop()
	if !ok {
		t.Fatal("root unit not stealable")
	}
	s.runUnit(rootT, ws.workers[1])
	if s.psErr == nil {
		t.Fatal("budget did not abort the root unit; the respawn path never ran")
	}

	seededStolen, respawnsStolen := 0, 0
	for {
		tk, ok := ws.workers[1].stealTop()
		if !ok {
			break
		}
		if tk.snap == nil {
			respawnsStolen++
		} else {
			seededStolen++
		}
		s.runUnit(tk, ws.workers[0])
	}
	for { // drain anything the stolen units pushed onto worker 0
		tk, ok := ws.workers[0].pop()
		if !ok {
			break
		}
		s.runUnit(tk, ws.workers[0])
	}
	if respawnsStolen == 0 {
		t.Errorf("no snapshot-less respawned unit was stolen (stole %d seeded)", seededStolen)
	}
	if seededStolen == 0 {
		t.Errorf("no seeded unit was stolen before the respawns")
	}
	if unitsDone != len(s.trie.Groups) {
		t.Fatalf("resolved %d of %d groups", unitsDone, len(s.trie.Groups))
	}
}

// Every steal after the root carries the divergence snapshot with it. A
// two-worker schedule where worker 0 runs only the root unit and worker 1
// then drains the scheduler makes every remaining unit a steal from
// worker 0's deque — so handoffs must count exactly the seeded units.
func TestSnapshotHandoffOnSteal(t *testing.T) {
	e := mustEntry(t, "reduce-strand-race-hidden")
	factory := func() func(*cilk.Ctx) { return e.Build(mem.NewAllocator()) }
	profile, probes, err := measureProbes(factory)
	if err != nil {
		t.Fatal(err)
	}
	fam := specgen.NewFamily(profile)
	sel := specgen.SampleFamily(fam, probes, 0, 0)
	var unitsDone int
	s := &prefixSweep{
		factory: factory,
		clock:   newSweepClock(0),
		fam:     fam, sel: sel,
		trie:     specgen.BuildTrieIndexed(len(sel), func(pos int) cilk.StealSpec { return fam.At(sel[pos]) }, probes),
		progress: newProgressSink(func(p SweepProgress) { unitsDone = p.UnitsDone }),
	}
	s.results = make([]groupResult, len(s.trie.Groups))
	s.progress.start(len(s.trie.Groups))
	ws := newWSSched(s, 2)
	s.sched = ws
	ws.push(ws.workers[0], unitTask{node: s.trie.Root, root: true})

	rootT, _ := ws.workers[0].pop()
	s.runUnit(rootT, ws.workers[0])
	ws.pending.Add(-1)
	ws.run(ws.workers[1])

	if want := int64(len(s.trie.Groups) - 1); ws.steals.Load() != want {
		t.Errorf("steals = %d, want every non-root unit (%d)", ws.steals.Load(), want)
	}
	if ws.handoffs.Load() == 0 {
		t.Error("no stolen unit carried a snapshot")
	}
	if got, hits := ws.handoffs.Load(), s.hits.Load(); got != hits {
		t.Errorf("handoffs = %d, seeded units = %d; every seeded unit was stolen here", got, hits)
	}
	if unitsDone != len(s.trie.Groups) {
		t.Fatalf("resolved %d of %d groups", unitsDone, len(s.trie.Groups))
	}
}

// Deque stress: an 8-worker sweep of a reducer_bench-style family (~6000
// groups) must actually distribute work while resolving every group
// exactly once, and the steal/handoff accounting must hold its invariant:
// only snapshot-less units (the root, failure respawns) can be stolen
// without a handoff. Run under -race this is the concurrency test of the
// deques, parking protocol and snapshot refcounts.
func TestSweepDequeStressEightWorkers(t *testing.T) {
	factory := func() func(*cilk.Ctx) { return progs.ReducerBench(mem.NewAllocator(), 32) }
	cr := Sweep(factory, SweepOptions{Workers: 8})
	if !cr.Complete() {
		t.Fatalf("stress sweep failed: %v", cr.Failures)
	}
	st := cr.Stats
	if st.Strategy != "prefix" || st.Workers != 8 {
		t.Fatalf("ran strategy %q at %d workers, want prefix at 8", st.Strategy, st.Workers)
	}
	if units := st.SnapshotHits + st.SnapshotMisses; units != int64(st.Groups) {
		t.Errorf("ran %d units for %d groups", units, st.Groups)
	}
	if st.Steals == 0 {
		t.Errorf("8-worker sweep of %d groups recorded no steals", st.Groups)
	}
	if st.Handoffs < st.Steals-st.SnapshotMisses {
		t.Errorf("handoffs = %d with %d steals and %d snapshot-less units; stolen seeded units must hand off",
			st.Handoffs, st.Steals, st.SnapshotMisses)
	}
	if len(st.WorkerBusy) != 8 {
		t.Errorf("WorkerBusy has %d lanes, want 8", len(st.WorkerBusy))
	}
}

// A deadline expiring while stolen units are still queued and in flight
// must split the family cleanly at any worker count: finished units keep
// their verdicts, expired units — including whole subtrees settled by a
// deadline skip, which must still release their seed snapshots — fail
// with KindDeadline, and no specification goes unaccounted.
func TestSweepDeadlineMidSteal(t *testing.T) {
	factory := func() func(*cilk.Ctx) { return slowFlat(7, 2*time.Millisecond) }
	cr := Sweep(factory, SweepOptions{Workers: 8, Timeout: 60 * time.Millisecond})
	if cr.Complete() {
		t.Fatalf("sweep of %d specs in 60ms reports Complete", cr.SpecsRun)
	}
	if cr.SpecsRun == 0 {
		t.Fatal("no unit finished before the deadline; timeout too tight for this machine")
	}
	if cr.SpecsRun+len(cr.Failures) < 92 {
		t.Fatalf("specs unaccounted for: %d ran + %d failed, want 92 settled", cr.SpecsRun, len(cr.Failures))
	}
	deadlineFailures := 0
	for _, sf := range cr.Failures {
		var se *streamerr.Error
		if !errors.As(sf.Err, &se) {
			t.Fatalf("failure %v is not a stream error", sf)
		}
		if se.Kind == streamerr.KindDeadline {
			deadlineFailures++
		}
	}
	if deadlineFailures == 0 {
		t.Fatalf("no deadline failure among %d failures", len(cr.Failures))
	}
}
