package rader

import (
	"strings"
	"testing"

	"repro/internal/apps"
	"repro/internal/cilk"
	"repro/internal/core"
	"repro/internal/mem"
	"repro/internal/progs"
	"repro/internal/sched"
)

func TestParseDetector(t *testing.T) {
	for _, s := range []string{"none", "empty", "peer-set", "sp-bags", "sp+"} {
		if _, err := ParseDetector(s); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := ParseDetector("tsan"); err == nil {
		t.Fatal("unknown detector must error")
	}
}

func TestRunAllDetectorsOnApp(t *testing.T) {
	al := mem.NewAllocator()
	ins := apps.Fib().Build(al, apps.Test)
	for _, d := range []DetectorName{None, EmptyTool, PeerSet, SPBags, SPPlus} {
		out := MustRun(ins.Prog, Config{Detector: d, Spec: cilk.StealAll{}})
		if err := ins.Verify(); err != nil {
			t.Fatalf("%s: %v", d, err)
		}
		if (d == None || d == EmptyTool) != (out.Report == nil) {
			t.Fatalf("%s: report presence wrong", d)
		}
		if out.Duration <= 0 || out.Result == nil {
			t.Fatalf("%s: outcome incomplete", d)
		}
	}
}

func TestReplayLabelReproducesRace(t *testing.T) {
	// Find the Figure 1 race under steal-all, then replay it from the
	// reported labels alone.
	al := mem.NewAllocator()
	prog := progs.Fig1(al, progs.Fig1Options{})
	out := MustRun(prog, Config{Detector: SPPlus, Spec: cilk.StealAll{}})
	if out.Report.Empty() {
		t.Fatal("expected the Figure 1 race under steal-all")
	}
	spec, err := sched.Parse(out.Replay)
	if err != nil {
		t.Fatalf("replay label unparsable: %v", err)
	}
	again := MustRun(prog, Config{Detector: SPPlus, Spec: spec})
	if again.Report.Empty() {
		t.Fatal("replayed schedule must reproduce the race")
	}
}

func TestCoverageFindsFig1Race(t *testing.T) {
	// The §7 sweep must find the Figure 1 determinacy race without being
	// told which schedule elicits it.
	al := mem.NewAllocator()
	prog := progs.Fig1(al, progs.Fig1Options{})
	cr := Coverage(prog)
	if cr.SpecsRun == 0 {
		t.Fatal("no specifications generated")
	}
	if len(cr.Races) == 0 {
		t.Fatal("coverage sweep missed the Figure 1 race")
	}
	for _, f := range cr.Races {
		if f.Race.Kind != core.Determinacy {
			t.Fatalf("unexpected race kind: %v", f.Race)
		}
		if f.Spec == "" {
			t.Fatal("finding must name its eliciting specification")
		}
	}
	if cr.Clean() {
		t.Fatal("Clean() must be false")
	}
}

func TestCoverageCleanProgram(t *testing.T) {
	al := mem.NewAllocator()
	prog := progs.Fig1(al, progs.Fig1Options{DeepCopy: true})
	cr := Coverage(prog)
	if !cr.Clean() {
		t.Fatalf("deep-copy program is clean; sweep found %d races, view-reads: %s",
			len(cr.Races), cr.ViewReads.Summary())
	}
	if cr.Profile.MaxSyncBlock < 1 || cr.SpecsRun < 2 {
		t.Fatalf("profile/sweep malformed: %+v, %d specs", cr.Profile, cr.SpecsRun)
	}
}

func TestCoverageViewRead(t *testing.T) {
	al := mem.NewAllocator()
	prog := progs.Fig1(al, progs.Fig1Options{EarlyGetValue: true})
	cr := Coverage(prog)
	if !cr.ViewReads.HasKind(core.ViewRead) {
		t.Fatal("coverage must surface the view-read race via Peer-Set")
	}
}

func TestNoStealReplayIsNone(t *testing.T) {
	al := mem.NewAllocator()
	ins := apps.Ferret().Build(al, apps.Test)
	out := MustRun(ins.Prog, Config{Detector: SPPlus})
	if !strings.HasPrefix(out.Replay, "labels:") && out.Replay != "labels:" {
		t.Fatalf("replay = %q", out.Replay)
	}
	if len(out.Result.Steals) != 0 {
		t.Fatal("no-spec run must not steal")
	}
}

func TestCoverageParallelMatchesSerial(t *testing.T) {
	factory := func() func(*cilk.Ctx) {
		return progs.Fig1(mem.NewAllocator(), progs.Fig1Options{})
	}
	serial := Coverage(factory())
	par := CoverageParallel(factory, 4)
	if par.SpecsRun != serial.SpecsRun {
		t.Fatalf("specs run differ: %d vs %d", par.SpecsRun, serial.SpecsRun)
	}
	if len(par.Races) != len(serial.Races) {
		t.Fatalf("findings differ: %d vs %d", len(par.Races), len(serial.Races))
	}
	for i := range par.Races {
		if par.Races[i].Race.String() != serial.Races[i].Race.String() {
			t.Fatalf("finding %d differs", i)
		}
	}
	if CoverageParallel(factory, 0).SpecsRun != serial.SpecsRun {
		t.Fatal("workers=0 must clamp to 1")
	}
}
