// Package peerset implements the Peer-Set algorithm (§3 of the paper),
// which executes a Cilk computation serially and detects view-read races:
// pairs of reducer-reads performed at strands with different peer sets,
// where the peer set of a strand u is the set of strands logically parallel
// with u.
//
// Following Figure 3, the algorithm maintains, for each Cilk function
// instantiation F on the call stack:
//
//   - F.ls, the local-spawn count: spawns F has executed since it last
//     synced;
//   - F.as, the ancestor-spawn count: the total spawns each ancestor of F
//     has performed since that ancestor last synced;
//   - F.SS, a bag with the IDs of F's completed descendants whose peer set
//     equals that of F's first strand;
//   - F.SP, a bag with the IDs of F's completed descendants whose peer set
//     equals that of the last continuation strand executed in F;
//   - F.P, a bag with the IDs of all other completed descendants of F.
//
// Bags live in a disjoint-set forest (package dsu), so each operation costs
// amortized O(alpha). A shadow space maps every reducer h to reader(h), the
// function that last read h, together with the spawn count it read at. By
// Lemmas 2 and 3, the reads at strands u then v have equal peer sets iff
// reader(h) is found in an SS or SP bag and the spawn counts match; the
// detector reports a view-read race otherwise (Theorem 4: it reports a race
// iff one exists). Total cost is O(T·alpha(x,x)) for a program running in
// time T with x reducers (Theorem 1).
package peerset

import (
	"repro/internal/cilk"
	"repro/internal/core"
	"repro/internal/dsu"
	"repro/internal/obs"
)

type bagKind int8

const (
	kindSS bagKind = iota
	kindSP
	kindP
)

// bag is one Peer-Set bag: a possibly-empty set in the disjoint-set forest.
// The forest payload of the set's root points back at the bag, so finding
// the bag containing a frame is a Find plus one pointer chase.
type bag struct {
	kind bagKind
	root dsu.Elem // dsu.None when empty
}

type frameRec struct {
	id    cilk.FrameID
	label string
	elem  dsu.Elem
	ls    int // local-spawn count
	as    int // ancestor-spawn count
	ss    *bag
	sp    *bag
	p     *bag
}

type readerInfo struct {
	elem  dsu.Elem
	frame cilk.FrameID
	label string
	s     int   // spawn count of the reader at the read
	event int64 // detector-relative ordinal of the read, for provenance
}

// Detector runs the Peer-Set algorithm over the cilk event stream. It must
// be driven by exactly one cilk.Run; create a fresh Detector per run.
type Detector struct {
	cilk.Empty // Peer-Set ignores memory accesses and view events

	forest *dsu.Forest
	stack  []*frameRec
	reader map[*cilk.Reducer]readerInfo
	lin    core.Lineage
	report core.Report

	counts obs.EventCounts
	events int64 // ordinal of the event being processed (1-based)
}

// New returns a fresh Peer-Set detector.
func New() *Detector {
	return &Detector{
		forest: dsu.NewForest(256),
		reader: make(map[*cilk.Reducer]readerInfo),
	}
}

// Name implements core.Detector.
func (d *Detector) Name() string { return "peer-set" }

// Report implements core.Detector.
func (d *Detector) Report() *core.Report { return &d.report }

func (d *Detector) newBag(k bagKind) *bag { return &bag{kind: k, root: dsu.None} }

// addToBag inserts a fresh forest element for rec into b.
func (d *Detector) addToBag(b *bag, e dsu.Elem) {
	d.counts.BagOps++
	if b.root == dsu.None {
		b.root = e
		d.forest.SetPayload(e, b)
		return
	}
	b.root = d.forest.Union(b.root, e)
}

// unionInto unions src's contents into dst and empties src.
func (d *Detector) unionInto(dst, src *bag) {
	if src.root == dsu.None {
		return
	}
	d.counts.BagOps++
	if dst.root == dsu.None {
		dst.root = src.root
		d.forest.SetPayload(src.root, dst)
	} else {
		dst.root = d.forest.Union(dst.root, src.root)
	}
	src.root = dsu.None
}

func (d *Detector) top() *frameRec { return d.stack[len(d.stack)-1] }

// FrameEnter implements the "F calls or spawns G" case of Figure 3.
func (d *Detector) FrameEnter(f *cilk.Frame) {
	d.events++
	d.counts.FrameEnters++
	rec := &frameRec{id: f.ID, label: f.Label}
	if len(d.stack) > 0 {
		parent := d.top()
		if f.Spawned {
			parent.ls++
			// A new spawn changes the peer set of F's subsequent strands:
			// descendants matching the previous continuation no longer
			// match any strand of F.
			d.unionInto(parent.p, parent.sp)
		}
		rec.as = parent.as + parent.ls
	}
	rec.ss = d.newBag(kindSS)
	rec.sp = d.newBag(kindSP)
	rec.p = d.newBag(kindP)
	rec.elem = d.forest.MakeSet(nil)
	d.addToBag(rec.ss, rec.elem) // G.SS = MakeBag(G)
	parent := core.NoParent
	if len(d.stack) > 0 {
		parent = int32(d.top().elem)
	}
	d.lin.Add(int32(rec.elem), f.ID, f.Label, parent)
	d.stack = append(d.stack, rec)
}

// FrameReturn implements the "G returns to F" case of Figure 3.
func (d *Detector) FrameReturn(g, f *cilk.Frame) {
	d.events++
	d.counts.FrameReturns++
	if len(d.stack) < 2 {
		panic(core.Violatef("peerset", core.StreamOrder, g.ID,
			"return of frame %d with %d frames on the stack", g.ID, len(d.stack)))
	}
	grec := d.top()
	if grec.id != g.ID {
		panic(core.Violatef("peerset", core.StreamOrder, g.ID,
			"event order violation: returning %v, top is %v", g.ID, grec.id))
	}
	d.stack = d.stack[:len(d.stack)-1]
	frec := d.top()
	if frec.id != f.ID {
		panic(core.Violatef("peerset", core.StreamOrder, f.ID,
			"parent mismatch on return: returning to %v, below top is %v", f.ID, frec.id))
	}
	d.unionInto(frec.p, grec.p)
	switch {
	case g.Spawned:
		// Everything under a spawned child is parallel to F's later
		// strands' peers differently — G's descendants can never share a
		// peer set with a strand of F.
		d.unionInto(frec.p, grec.ss)
	case frec.ls == 0:
		// Called with no outstanding spawns: G's first strand has the
		// same peer set as F's first strand.
		d.unionInto(frec.ss, grec.ss)
	default:
		// Called with outstanding spawns: G's first strand matches F's
		// last executed continuation strand.
		d.unionInto(frec.sp, grec.ss)
	}
	// G.SP is guaranteed empty: functions sync before returning.
}

// Sync implements the "F syncs" case of Figure 3.
func (d *Detector) Sync(f *cilk.Frame) {
	d.events++
	d.counts.Syncs++
	if len(d.stack) == 0 {
		panic(core.Violatef("peerset", core.StreamOrder, f.ID, "sync before any frame entered"))
	}
	rec := d.top()
	if rec.id != f.ID {
		panic(core.Violatef("peerset", core.StreamOrder, f.ID,
			"sync frame mismatch: syncing %v, top is %v", f.ID, rec.id))
	}
	rec.ls = 0
	d.unionInto(rec.p, rec.sp)
}

// ReducerCreate treats reducer creation as a reducer-read (§3 defines
// reducer-reads as creating, resetting, or querying the reducer).
func (d *Detector) ReducerCreate(f *cilk.Frame, r *cilk.Reducer) {
	d.events++
	d.counts.ReducerCreates++
	d.readReducer(f, r)
}

// ReducerRead handles set_value and get_value reducer-reads.
func (d *Detector) ReducerRead(f *cilk.Frame, r *cilk.Reducer) {
	d.events++
	d.counts.ReducerReads++
	d.readReducer(f, r)
}

// readReducer implements the "F reads reducer h" case of Figure 3.
func (d *Detector) readReducer(f *cilk.Frame, r *cilk.Reducer) {
	if len(d.stack) == 0 {
		panic(core.Violatef("peerset", core.StreamOrder, f.ID, "reducer-read before any frame entered"))
	}
	rec := d.top()
	if rec.id != f.ID {
		panic(core.Violatef("peerset", core.StreamOrder, f.ID,
			"read frame mismatch: reading in %v, top is %v", f.ID, rec.id))
	}
	s := rec.as + rec.ls
	d.counts.ShadowLookups++
	if prev, ok := d.reader[r]; ok {
		b := d.forest.Payload(prev.elem).(*bag)
		if b.kind == kindP || prev.s != s {
			// Lemma 2 vs Lemma 3: the prior reader either fell into a P bag
			// (some ancestor spawned past it) or sits in an SS/SP bag with a
			// different spawn count; name whichever rule fired.
			relation := "spawn-count mismatch"
			if b.kind == kindP {
				relation = "reader in P-bag"
			}
			d.report.Add(core.Race{
				Kind:    core.ViewRead,
				Reducer: r.Name,
				First: core.Access{
					Frame: prev.frame, Label: prev.label,
					Path: d.lin.Path(int32(prev.elem)), Op: core.OpReducerRead,
				},
				Second: core.Access{
					Frame: rec.id, Label: rec.label,
					Path: d.lin.Path(int32(rec.elem)), Op: core.OpReducerRead,
				},
				Prov: core.Provenance{
					FirstEvent:  prev.event,
					SecondEvent: d.events,
					Relation:    relation,
				},
			})
		}
	}
	d.reader[r] = readerInfo{elem: rec.elem, frame: rec.id, label: rec.label, s: s, event: d.events}
}

// The algorithm is oblivious to raw memory traffic; the embedded cilk.Empty
// provides the no-op Load/Store and view-aware handlers.
var (
	_ core.Detector = (*Detector)(nil)
	_ cilk.Hooks    = (*Detector)(nil)
)

// Stats implements core.StatsProvider: the disjoint-set accounting behind
// the O(T·α(x,x)) bound of Theorem 1.
func (d *Detector) Stats() core.Stats {
	finds, unions := d.forest.Stats()
	return core.Stats{Elems: d.forest.Len(), Finds: finds, Unions: unions}
}

// EventCounts implements core.EventCountsProvider. Peer-Set is oblivious
// to memory traffic and view boundaries, so only the control and reducer
// classes (and bag/shadow bookkeeping) accumulate.
func (d *Detector) EventCounts() obs.EventCounts { return d.counts }
