package peerset

import (
	"fmt"
	"testing"

	"repro/internal/cilk"
	"repro/internal/progs"
)

// TestDefinitionOneSemantics checks the paper's Definition 1 directly: if
// peers(u) = peers(v), then the view read at v equals the view read at u
// combined with every update performed between the start of u and the
// start of v in the serial walk — under *every* schedule. Each Figure 2
// strand reads its current view first and then appends its own number, so
// for a same-class pair (u, v) the expected view at v is
// view(u) ++ [u, u+1, …, v−1].
func TestDefinitionOneSemantics(t *testing.T) {
	listMonoid := cilk.MonoidFuncs(
		func(*cilk.Ctx) any { return []int(nil) },
		func(_ *cilk.Ctx, l, r any) any { return append(l.([]int), r.([]int)...) },
	)
	specs := []cilk.StealSpec{
		nil,
		cilk.StealAll{},
		cilk.StealAll{Reduce: cilk.ReduceEager},
		cilk.StealAll{Reduce: cilk.ReduceMiddleFirst},
		progs.RandomSpec{Seed: 5, P: 0.5},
	}
	record := func(spec cilk.StealSpec) map[int][]int {
		views := make(map[int][]int)
		prog := func(c *cilk.Ctx) {
			r := c.NewReducerQuiet("h", listMonoid, []int(nil))
			progs.Fig2(func(cc *cilk.Ctx, strand int) {
				v := cc.Value(r).([]int)
				views[strand] = append([]int(nil), v...)
				cc.Update(r, func(_ *cilk.Ctx, x any) any {
					return append(x.([]int), strand)
				})
			})(c)
		}
		cilk.Run(prog, cilk.Config{Spec: spec})
		return views
	}

	for _, spec := range specs {
		views := record(spec)
		for _, class := range progs.Fig2PeerClasses {
			for i := 0; i < len(class); i++ {
				for j := i + 1; j < len(class); j++ {
					u, v := class[i], class[j]
					want := append(append([]int(nil), views[u]...), seq(u, v)...)
					if fmt.Sprint(views[v]) != fmt.Sprint(want) {
						t.Errorf("spec %#v: Definition 1 violated for (%d,%d): view(%d)=%v, want %v",
							spec, u, v, v, views[v], want)
					}
				}
			}
		}
	}

	// The converse: for a cross-class pair (the paper's example race
	// between strands 1 and 9), some schedule must violate the formula —
	// that schedule-dependence is what makes it a view-read race.
	violated := false
	for _, spec := range specs {
		views := record(spec)
		want := append(append([]int(nil), views[1]...), seq(1, 9)...)
		if fmt.Sprint(views[9]) != fmt.Sprint(want) {
			violated = true
		}
	}
	if !violated {
		t.Error("reads at strands 1 and 9 must violate Definition 1 under some schedule")
	}
}

// seq returns [u, u+1, …, v−1].
func seq(u, v int) []int {
	var out []int
	for s := u; s < v; s++ {
		out = append(out, s)
	}
	return out
}
