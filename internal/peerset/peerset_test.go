package peerset

import (
	"testing"

	"repro/internal/cilk"
	"repro/internal/core"
	"repro/internal/mem"
	"repro/internal/progs"
)

// runReads executes the Figure 2 fixture with reducer-reads at the given
// strands and returns the Peer-Set report.
func runReads(t *testing.T, readAt ...int) *core.Report {
	t.Helper()
	d := New()
	cilk.Run(progs.Fig2Reads(readAt...), cilk.Config{Hooks: d})
	return d.Report()
}

func TestFig2PeerClassesNoRaceWithin(t *testing.T) {
	// Reads confined to a single peer-set equivalence class never race.
	for _, class := range progs.Fig2PeerClasses {
		rep := runReads(t, class...)
		if !rep.Empty() {
			t.Errorf("reads at %v (one peer class) reported: %s", class, rep.Summary())
		}
	}
}

func TestFig2CrossClassRaces(t *testing.T) {
	// Reads spanning two different classes always race. Check every pair
	// of class representatives.
	for i, ci := range progs.Fig2PeerClasses {
		for j, cj := range progs.Fig2PeerClasses {
			if i == j {
				continue
			}
			a, b := ci[0], cj[0]
			if a > b {
				a, b = b, a // serial order
			}
			rep := runReads(t, a, b)
			if rep.Empty() {
				t.Errorf("reads at %d and %d (different peer classes) not reported", a, b)
			}
		}
	}
}

func TestFig2PaperExamples(t *testing.T) {
	// §3's worked examples on Figure 2.
	cases := []struct {
		reads []int
		race  bool
		why   string
	}{
		{[]int{5, 9}, false, "strands 5 and 9 have the same peers"},
		{[]int{10, 14}, true, "strands 12,13 are peers of 14 but not of 10"},
		{[]int{1, 9}, true, "the paper's example race"},
		{[]int{10, 11}, false, "11's peer set matches 10, the caller of e"},
		{[]int{11, 15}, false, "SP-bag path with equal spawn counts"},
		{[]int{14, 15}, true, "SP-bag path with different spawn counts"},
		{[]int{9, 10}, true, "logically parallel reads (P-bag path)"},
		{[]int{1, 16}, false, "empty peer sets on both ends"},
		{[]int{1, 4}, true, "spawn of b changed the peer set"},
		{[]int{5, 8}, true, "d is a peer of 8 but not of 5"},
	}
	for _, tc := range cases {
		rep := runReads(t, tc.reads...)
		if got := !rep.Empty(); got != tc.race {
			t.Errorf("reads %v: race=%v, want %v (%s)\n%s",
				tc.reads, got, tc.race, tc.why, rep.Summary())
		}
	}
}

func TestEarliestRaceDedup(t *testing.T) {
	// Reads at 1, then twice at 9: one distinct race (1 vs 9); the second
	// read at 9 has the same peers as the first so reader() was replaced
	// and no second distinct pair appears.
	rep := runReads(t, 1, 9, 9)
	if rep.Distinct() != 1 {
		t.Fatalf("distinct = %d, want 1:\n%s", rep.Distinct(), rep.Summary())
	}
}

func TestMultipleReducersIndependent(t *testing.T) {
	d := New()
	cilk.Run(func(c *cilk.Ctx) {
		r1 := c.NewReducerQuiet("one", progs.SumMonoid, 0)
		r2 := c.NewReducerQuiet("two", progs.SumMonoid, 0)
		c.Value(r1) // strand with empty peer set
		c.Spawn("f", func(c *cilk.Ctx) {
			c.Value(r2)
		})
		c.Value(r2) // races with the read in f (parallel)
		c.Sync()
		c.Value(r1) // same peers as the first r1 read: no race
	}, cilk.Config{Hooks: d})
	rep := d.Report()
	if rep.Distinct() != 1 {
		t.Fatalf("distinct = %d, want 1:\n%s", rep.Distinct(), rep.Summary())
	}
	if rep.Races()[0].Reducer != "two" {
		t.Fatalf("racing reducer = %q, want two", rep.Races()[0].Reducer)
	}
}

func TestCreateCountsAsRead(t *testing.T) {
	// Creating a reducer is a reducer-read; creating before a spawn and
	// reading in the spawned child races.
	d := New()
	cilk.Run(func(c *cilk.Ctx) {
		r := c.NewReducer("h", progs.SumMonoid, 0)
		c.Spawn("f", func(c *cilk.Ctx) { c.Value(r) })
		c.Sync()
	}, cilk.Config{Hooks: d})
	if d.Report().Empty() {
		t.Fatal("create-then-parallel-read must race: create at empty peers, read has different peers")
	}
}

func TestSetValueCountsAsRead(t *testing.T) {
	d := New()
	cilk.Run(func(c *cilk.Ctx) {
		r := c.NewReducerQuiet("h", progs.SumMonoid, 0)
		c.Spawn("f", func(*cilk.Ctx) {})
		c.SetValue(r, 1) // spawn count now 1
		c.Sync()
		c.Value(r) // spawn count 0 again: different peer set
	}, cilk.Config{Hooks: d})
	if d.Report().Empty() {
		t.Fatal("set_value before sync then get_value after sync must race")
	}
}

func TestUpdateIsNotARead(t *testing.T) {
	// Update, Create-Identity and Reduce do not count as reducer-reads;
	// the canonical update-in-parallel-then-read-after-sync pattern is
	// race-free.
	d := New()
	cilk.Run(func(c *cilk.Ctx) {
		r := c.NewReducer("sum", progs.SumMonoid, 0)
		c.ParForGrain("upd", 16, 2, func(c *cilk.Ctx, i int) {
			c.Update(r, func(_ *cilk.Ctx, v any) any { return v.(int) + i })
		})
		if got := c.Value(r).(int); got != 120 {
			t.Fatalf("sum = %d, want 120", got)
		}
	}, cilk.Config{Hooks: d})
	if !d.Report().Empty() {
		t.Fatalf("canonical reducer pattern must be race-free:\n%s", d.Report().Summary())
	}
}

func TestFig1ViewReadVariants(t *testing.T) {
	run := func(opts progs.Fig1Options) *core.Report {
		d := New()
		al := mem.NewAllocator()
		cilk.Run(progs.Fig1(al, opts), cilk.Config{Hooks: d})
		return d.Report()
	}
	if rep := run(progs.Fig1Options{}); !rep.Empty() {
		t.Fatalf("correct Figure 1 reducer usage has no view-read race:\n%s", rep.Summary())
	}
	if rep := run(progs.Fig1Options{EarlyGetValue: true}); !rep.HasKind(core.ViewRead) {
		t.Fatal("get_value before cilk_sync must be a view-read race")
	}
	if rep := run(progs.Fig1Options{SetValueAfterSpawn: true}); !rep.HasKind(core.ViewRead) {
		t.Fatal("set_value after cilk_spawn must be a view-read race (even if benign)")
	}
}

func TestScheduleIndependence(t *testing.T) {
	// Peer-Set analyses logical parallelism; simulated steals must not
	// change its verdicts.
	for _, spec := range []cilk.StealSpec{
		cilk.NoSteals{},
		cilk.StealAll{},
		cilk.StealAll{Reduce: cilk.ReduceEager},
	} {
		d := New()
		cilk.Run(progs.Fig2Reads(10, 14), cilk.Config{Spec: spec, Hooks: d})
		if d.Report().Empty() {
			t.Errorf("spec %#v: race missed", spec)
		}
		d2 := New()
		cilk.Run(progs.Fig2Reads(5, 9), cilk.Config{Spec: spec, Hooks: d2})
		if !d2.Report().Empty() {
			t.Errorf("spec %#v: false positive", spec)
		}
	}
}

func TestDeepNestingStress(t *testing.T) {
	// A deep spawn chain with reads at every level: each level's read has
	// a different peer set from its parent's, so n-1 races involving the
	// last reader are found — but distinct pairs get deduped as reader()
	// advances. Just assert it terminates and reports something.
	d := New()
	var nest func(c *cilk.Ctx, r *cilk.Reducer, depth int)
	nest = func(c *cilk.Ctx, r *cilk.Reducer, depth int) {
		if depth == 0 {
			return
		}
		c.Value(r)
		c.Spawn("n", func(cc *cilk.Ctx) { nest(cc, r, depth-1) })
		c.Sync()
	}
	cilk.Run(func(c *cilk.Ctx) {
		r := c.NewReducerQuiet("h", progs.SumMonoid, 0)
		nest(c, r, 50)
	}, cilk.Config{Hooks: d})
	if d.Report().Empty() {
		t.Fatal("nested reads at different depths must race")
	}
}
