package ehlabel

import (
	"testing"
	"testing/quick"

	"repro/internal/cilk"
	"repro/internal/dag"
	"repro/internal/mem"
	"repro/internal/offsetspan"
	"repro/internal/progs"
	"repro/internal/spbags"
)

func run(prog func(*cilk.Ctx)) (*Detector, bool) {
	d := New()
	cilk.Run(prog, cilk.Config{Hooks: d})
	return d, !d.Report().Empty()
}

func TestBasicRaceAndSync(t *testing.T) {
	al := mem.NewAllocator()
	x := al.Alloc("x", 1)
	if _, racy := run(func(c *cilk.Ctx) {
		c.Spawn("w", func(c *cilk.Ctx) { c.Store(x.At(0)) })
		c.Load(x.At(0))
		c.Sync()
	}); !racy {
		t.Fatal("race missed")
	}
	if _, racy := run(func(c *cilk.Ctx) {
		c.Spawn("w", func(c *cilk.Ctx) { c.Store(x.At(0)) })
		c.Sync()
		c.Load(x.At(0))
	}); racy {
		t.Fatal("false positive across sync")
	}
}

func TestLabelOrderRules(t *testing.T) {
	pe, ph := label{0}, label{0}
	childE, childH := pe.extend(0), ph.extend(1)
	contE, contH := pe.extend(1), ph.extend(0)
	if ordered(childE, childH, contE, contH) {
		t.Fatal("child ‖ continuation")
	}
	if !ordered(pe, ph, childE, childH) {
		t.Fatal("prefix is in series with its extensions")
	}
	// Sync extends the block BASE with the sync component.
	syncE, syncH := pe.extend(2), ph.extend(2)
	if !ordered(childE, childH, syncE, syncH) {
		t.Fatal("sync joins the child")
	}
	if !ordered(contE, contH, syncE, syncH) {
		t.Fatal("sync joins the continuation")
	}
	// Grandchild spawned from the continuation is still parallel with the
	// first child, and joined by the sync.
	gcE, gcH := contE.extend(0), contH.extend(1)
	if ordered(childE, childH, gcE, gcH) {
		t.Fatal("children of different spawns are parallel")
	}
	if !ordered(gcE, gcH, syncE, syncH) {
		t.Fatal("sync joins later children")
	}
}

func TestCalledChildAdvancesClock(t *testing.T) {
	// The regression scenario that caught offset-span's stale-base bug.
	al := mem.NewAllocator()
	x := al.Alloc("x", 1)
	if _, racy := run(func(c *cilk.Ctx) {
		c.Call("f", func(c *cilk.Ctx) {
			c.Spawn("s", func(*cilk.Ctx) {})
			c.Sync()
			c.Store(x.At(0))
			c.Sync()
		})
		c.Sync()
		c.Spawn("g", func(c *cilk.Ctx) { c.Load(x.At(0)) })
		c.Sync()
	}); racy {
		t.Fatal("false positive: called child's syncs advanced the clock")
	}
}

func TestQuickThreeDetectorsAgree(t *testing.T) {
	// On reducer-free random programs, english-hebrew, offset-span,
	// SP-bags and the dag oracle all agree per address.
	check := func(seed int64) bool {
		al := mem.NewAllocator()
		prog := progs.Random(al, progs.RandomOpts{Seed: seed, NoReducers: true})
		eh := New()
		os := offsetspan.New()
		sb := spbags.New()
		rec := dag.NewRecorder()
		cilk.Run(prog, cilk.Config{Hooks: cilk.Multi{eh, os, sb, rec}})
		want := rec.D.RacyAddrs()
		addrsOf := func(races []mem.Addr) map[mem.Addr]bool {
			m := map[mem.Addr]bool{}
			for _, a := range races {
				m[a] = true
			}
			return m
		}
		var ehA, osA, sbA []mem.Addr
		for _, r := range eh.Report().Races() {
			ehA = append(ehA, r.Addr)
		}
		for _, r := range os.Report().Races() {
			osA = append(osA, r.Addr)
		}
		for _, r := range sb.Report().Races() {
			sbA = append(sbA, r.Addr)
		}
		for _, got := range []map[mem.Addr]bool{addrsOf(ehA), addrsOf(osA), addrsOf(sbA)} {
			if len(got) != len(want) {
				t.Logf("seed %d: detector found %d addrs, oracle %d", seed, len(got), len(want))
				return false
			}
			for a := range want {
				if !got[a] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestStaticLabelsGrowAcrossBlocks(t *testing.T) {
	// §9's contrast: English-Hebrew labels are static — once a sync block
	// closes, its sync component stays in every later label, so labels
	// keep growing over a long sequence of sync blocks. Offset-span
	// labels are dynamic: the sync BUMPS an existing component, so the
	// label length stays at the nesting depth no matter how many blocks
	// run.
	prog := func(blocks, spawnsPerBlock int) func(*cilk.Ctx) {
		return func(c *cilk.Ctx) {
			for b := 0; b < blocks; b++ {
				for i := 0; i < spawnsPerBlock; i++ {
					c.Spawn("s", func(*cilk.Ctx) {})
				}
				c.Sync()
			}
		}
	}
	eh := New()
	cilk.Run(prog(32, 4), cilk.Config{Hooks: eh})
	os := offsetspan.New()
	cilk.Run(prog(32, 4), cilk.Config{Hooks: os})
	if eh.MaxLabelLen() < 32 {
		t.Fatalf("english-hebrew labels must grow past the block count: %d", eh.MaxLabelLen())
	}
	if os.MaxLabelLen() > 8 {
		t.Fatalf("offset-span labels must stay near nesting depth: %d", os.MaxLabelLen())
	}
	if eh.MaxLabelLen() < 4*os.MaxLabelLen() {
		t.Fatalf("static labels (%d) should dwarf dynamic ones (%d) over many blocks",
			eh.MaxLabelLen(), os.MaxLabelLen())
	}
}

func TestName(t *testing.T) {
	if New().Name() != "english-hebrew" {
		t.Fatal("name")
	}
}

func TestRegressionSameDepthCallRewind(t *testing.T) {
	// Regression for the false positive at seed 6187384068851411581: a
	// called child syncing at the caller's own label depth used to let
	// the caller's next sync rewind the clock, colliding label spaces
	// between the child's subtree and later spawns.
	al := mem.NewAllocator()
	prog := progs.Random(al, progs.RandomOpts{Seed: 6187384068851411581, NoReducers: true})
	eh := New()
	sb := spbags.New()
	cilk.Run(prog, cilk.Config{Hooks: cilk.Multi{eh, sb}})
	if eh.Report().Distinct() != sb.Report().Distinct() {
		t.Fatalf("english-hebrew found %d distinct races, sp-bags %d",
			eh.Report().Distinct(), sb.Report().Distinct())
	}
}
