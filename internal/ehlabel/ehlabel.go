// Package ehlabel implements the English-Hebrew labeling determinacy-race
// detector of Nudler and Rudolph, the earliest of the labeling schemes §9
// of the paper surveys. Every strand carries two static labels: an English
// label ordering fork branches left-to-right and a Hebrew label ordering
// them right-to-left. Two strands are logically in series iff the two
// lexicographic orders agree on them; a disagreement means they sit on
// different branches of some fork — logically parallel.
//
// Labels never change once assigned (they are "static", as §9 notes), and
// their length grows with the number of fork points on the strand's path —
// the space behaviour that offset-span labeling (package offsetspan)
// improved to nesting depth, and that the bags algorithms replaced with
// constant-size set membership. BenchmarkAblationLabeling quantifies the
// three side by side.
//
// The Cilk mapping mirrors package offsetspan: a spawn is a binary fork —
// English orders (child=0, continuation=1), Hebrew orders (child=1,
// continuation=0) — and a sync appends a dominating component to the block
// base in both labelings, ordering the sync strand after the whole block
// in both orders while keeping every previously issued label intact.
package ehlabel

import (
	"repro/internal/cilk"
	"repro/internal/core"
	"repro/internal/mem"
	"repro/internal/obs"
)

// label is an immutable component sequence; copied on extension. Labels
// are static: they only ever grow, never shrink or mutate — the defining
// property (and space drawback) §9 ascribes to the scheme.
type label []int32

func (l label) extend(c int32) label {
	out := make(label, len(l)+1)
	copy(out, l)
	out[len(l)] = c
	return out
}

// syncComponent computes the component a sync appends to the block base:
// it must exceed everything the block issued at that label position in
// both orders. Spawn branches contribute only {0, 1} there, so 2 suffices
// — unless a called child at the same label depth synced internally, in
// which case adoption wrote the child's (even, ≥2) sync component at that
// position and ours must go past it, or the clock would rewind and later
// labels would collide with the child's subtree (the same stale-base
// disease the offset-span detector needed curing of).
func syncComponent(cur label, baseLen int) int32 {
	if len(cur) > baseLen && cur[baseLen] >= 2 {
		return cur[baseLen] + 2
	}
	return 2
}

// less is lexicographic comparison with prefix-before-extension.
func less(a, b label) bool {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return len(a) < len(b)
}

// ordered reports whether the strands labeled (ae,ah) and (be,bh) are
// logically in series: the English and Hebrew orders agree.
func ordered(ae, ah, be, bh label) bool {
	return less(ae, be) == less(ah, bh) // equal labels never occur across ops that matter
}

type frameRec struct {
	id    cilk.FrameID
	label string
	e, h  label
	// baseE/baseH are the labels at the start of the current sync block;
	// the sync successor extends them rather than the (longer) current
	// labels, keeping growth one component per sync.
	baseE, baseH label
}

// Detector runs English-Hebrew labeling over the cilk event stream; like
// SP-bags and offset-span it detects determinacy races between
// view-oblivious strands of one serial run.
type Detector struct {
	cilk.Empty

	stack  []*frameRec
	reader map[mem.Addr]shadowEntry
	writer map[mem.Addr]shadowEntry
	report core.Report
	maxLen int

	counts obs.EventCounts
	events int64 // ordinal of the event being processed (1-based)
}

type shadowEntry struct {
	e, h  label
	frame cilk.FrameID
	name  string
	event int64 // detector-relative ordinal of the access, for provenance
}

// New returns a fresh detector.
func New() *Detector {
	return &Detector{
		reader: make(map[mem.Addr]shadowEntry),
		writer: make(map[mem.Addr]shadowEntry),
	}
}

// Name implements core.Detector.
func (d *Detector) Name() string { return "english-hebrew" }

// Report implements core.Detector.
func (d *Detector) Report() *core.Report { return &d.report }

// MaxLabelLen reports the longest label issued — grows with the number of
// fork points, §9's stated drawback of the scheme.
func (d *Detector) MaxLabelLen() int { return d.maxLen }

func (d *Detector) track(l label) label {
	if len(l) > d.maxLen {
		d.maxLen = len(l)
	}
	return l
}

func (d *Detector) top() *frameRec { return d.stack[len(d.stack)-1] }

// FrameEnter implements cilk.Hooks.
func (d *Detector) FrameEnter(f *cilk.Frame) {
	d.events++
	d.counts.FrameEnters++
	rec := &frameRec{id: f.ID, label: f.Label}
	if len(d.stack) == 0 {
		rec.e = d.track(label{0})
		rec.h = d.track(label{0})
	} else {
		parent := d.top()
		if f.Spawned {
			rec.e = d.track(parent.e.extend(0))
			rec.h = d.track(parent.h.extend(1))
			parent.e = d.track(parent.e.extend(1))
			parent.h = d.track(parent.h.extend(0))
		} else {
			rec.e, rec.h = parent.e, parent.h
		}
	}
	rec.baseE, rec.baseH = rec.e, rec.h
	d.stack = append(d.stack, rec)
}

// FrameReturn implements cilk.Hooks.
func (d *Detector) FrameReturn(g, f *cilk.Frame) {
	d.events++
	d.counts.FrameReturns++
	grec := d.top()
	d.stack = d.stack[:len(d.stack)-1]
	if !g.Spawned {
		// The called child advanced logical time; adopt its labels. The
		// block base stays the caller's: the caller's own sync must still
		// dominate children it spawned before the call.
		parent := d.top()
		parent.e, parent.h = grec.e, grec.h
	}
}

// Sync implements cilk.Hooks: the sync strand's labels extend the block
// base with the sync component in both labelings. Every label the block
// issued extends the base with a 0 or 1 in each order, so the sync
// compares greater in both — in series after the block — while any two
// parallel strands still disagree at their fork component.
func (d *Detector) Sync(f *cilk.Frame) {
	d.events++
	d.counts.Syncs++
	rec := d.top()
	c := syncComponent(rec.e, len(rec.baseE))
	rec.e = d.track(rec.baseE.extend(c))
	rec.h = d.track(rec.baseH.extend(c))
	rec.baseE, rec.baseH = rec.e, rec.h
}

// Load implements cilk.Hooks.
func (d *Detector) Load(f *cilk.Frame, a mem.Addr) {
	d.events++
	d.counts.Loads++
	d.counts.ShadowLookups += 2
	rec := d.top()
	if w, ok := d.writer[a]; ok && !ordered(w.e, w.h, rec.e, rec.h) {
		d.report.Add(core.Race{
			Kind: core.Determinacy, Addr: a,
			First:  core.Access{Frame: w.frame, Label: w.name, Op: core.OpWrite},
			Second: core.Access{Frame: rec.id, Label: rec.label, Op: core.OpRead},
			Prov:   core.Provenance{FirstEvent: w.event, SecondEvent: d.events, Relation: "unordered labels"},
		})
	}
	if r, ok := d.reader[a]; !ok || ordered(r.e, r.h, rec.e, rec.h) {
		d.reader[a] = shadowEntry{e: rec.e, h: rec.h, frame: rec.id, name: rec.label, event: d.events}
	}
}

// Store implements cilk.Hooks.
func (d *Detector) Store(f *cilk.Frame, a mem.Addr) {
	d.events++
	d.counts.Stores++
	d.counts.ShadowLookups += 2
	rec := d.top()
	if r, ok := d.reader[a]; ok && !ordered(r.e, r.h, rec.e, rec.h) {
		d.report.Add(core.Race{
			Kind: core.Determinacy, Addr: a,
			First:  core.Access{Frame: r.frame, Label: r.name, Op: core.OpRead},
			Second: core.Access{Frame: rec.id, Label: rec.label, Op: core.OpWrite},
			Prov:   core.Provenance{FirstEvent: r.event, SecondEvent: d.events, Relation: "unordered labels"},
		})
	}
	w, ok := d.writer[a]
	if ok && !ordered(w.e, w.h, rec.e, rec.h) {
		d.report.Add(core.Race{
			Kind: core.Determinacy, Addr: a,
			First:  core.Access{Frame: w.frame, Label: w.name, Op: core.OpWrite},
			Second: core.Access{Frame: rec.id, Label: rec.label, Op: core.OpWrite},
			Prov:   core.Provenance{FirstEvent: w.event, SecondEvent: d.events, Relation: "unordered labels"},
		})
	}
	if !ok || ordered(w.e, w.h, rec.e, rec.h) {
		d.writer[a] = shadowEntry{e: rec.e, h: rec.h, frame: rec.id, name: rec.label, event: d.events}
	}
}

var (
	_ core.Detector = (*Detector)(nil)
	_ cilk.Hooks    = (*Detector)(nil)
)

// EventCounts implements core.EventCountsProvider.
func (d *Detector) EventCounts() obs.EventCounts { return d.counts }
