package spbags

import (
	"testing"
	"testing/quick"

	"repro/internal/cilk"
	"repro/internal/mem"
)

func run(prog func(*cilk.Ctx)) bool {
	d := New()
	cilk.Run(prog, cilk.Config{Hooks: d})
	return !d.Report().Empty()
}

func TestSpawnWriteContinuationRead(t *testing.T) {
	al := mem.NewAllocator()
	x := al.Alloc("x", 1)
	if !run(func(c *cilk.Ctx) {
		c.Spawn("w", func(c *cilk.Ctx) { c.Store(x.At(0)) })
		c.Load(x.At(0))
		c.Sync()
	}) {
		t.Fatal("race missed")
	}
}

func TestSyncSerializes(t *testing.T) {
	al := mem.NewAllocator()
	x := al.Alloc("x", 1)
	if run(func(c *cilk.Ctx) {
		c.Spawn("w", func(c *cilk.Ctx) { c.Store(x.At(0)) })
		c.Sync()
		c.Store(x.At(0))
	}) {
		t.Fatal("false positive after sync")
	}
}

func TestCallSerializes(t *testing.T) {
	al := mem.NewAllocator()
	x := al.Alloc("x", 1)
	if run(func(c *cilk.Ctx) {
		c.Call("w", func(c *cilk.Ctx) { c.Store(x.At(0)) })
		c.Store(x.At(0))
	}) {
		t.Fatal("call is serial")
	}
}

func TestNestedSpawnRace(t *testing.T) {
	al := mem.NewAllocator()
	x := al.Alloc("x", 1)
	if !run(func(c *cilk.Ctx) {
		c.Spawn("a", func(c *cilk.Ctx) {
			c.Spawn("b", func(c *cilk.Ctx) { c.Store(x.At(0)) })
			c.Sync()
		})
		c.Spawn("c", func(c *cilk.Ctx) { c.Load(x.At(0)) })
		c.Sync()
	}) {
		t.Fatal("race across sibling subtrees missed")
	}
}

func TestMultipleSyncBlocks(t *testing.T) {
	al := mem.NewAllocator()
	x := al.Alloc("x", 4)
	if run(func(c *cilk.Ctx) {
		for b := 0; b < 4; b++ {
			b := b
			c.Spawn("w", func(c *cilk.Ctx) { c.Store(x.At(b)) })
			c.Sync()
			c.Load(x.At(b))
		}
	}) {
		t.Fatal("per-block sync must serialize each pair")
	}
}

func TestReadReadNoRace(t *testing.T) {
	al := mem.NewAllocator()
	x := al.Alloc("x", 1)
	if run(func(c *cilk.Ctx) {
		c.Spawn("r1", func(c *cilk.Ctx) { c.Load(x.At(0)) })
		c.Spawn("r2", func(c *cilk.Ctx) { c.Load(x.At(0)) })
		c.Sync()
	}) {
		t.Fatal("parallel reads are fine")
	}
}

func TestPseudotransitivitySingleReaderSuffices(t *testing.T) {
	// Feng–Leiserson's key space optimization: keeping only the first
	// parallel reader never loses a race. Serial reader then parallel
	// reader then a write racing with the parallel one.
	al := mem.NewAllocator()
	x := al.Alloc("x", 1)
	if !run(func(c *cilk.Ctx) {
		c.Load(x.At(0)) // serial reader (same frame)
		c.Spawn("r", func(c *cilk.Ctx) { c.Load(x.At(0)) })
		c.Spawn("w", func(c *cilk.Ctx) { c.Store(x.At(0)) })
		c.Sync()
	}) {
		t.Fatal("race between parallel reader and writer missed")
	}
}

func TestQuickNoFalseNegativesOnChains(t *testing.T) {
	// Spawn chains with one writer and one reader at random positions:
	// race iff neither a sync nor a common serial chain separates them.
	check := func(wpos, rpos, syncpos uint8) bool {
		w := int(wpos % 6)
		r := int(rpos % 6)
		s := int(syncpos % 7) // sync after position s (6 = no sync)
		al := mem.NewAllocator()
		x := al.Alloc("x", 1)
		var racy bool
		prog := func(c *cilk.Ctx) {
			for i := 0; i < 6; i++ {
				i := i
				c.Spawn("t", func(cc *cilk.Ctx) {
					if i == w {
						cc.Store(x.At(0))
					}
					if i == r {
						cc.Load(x.At(0))
					}
				})
				if i == s {
					c.Sync()
				}
			}
			c.Sync()
		}
		racy = run(prog)
		// Expected: w and r (when distinct or even equal? same task: both
		// accesses in one strand: no race) race iff distinct and not
		// separated by the sync.
		want := w != r && !(s >= min(w, r) && s < max(w, r))
		return racy == want
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func TestName(t *testing.T) {
	if New().Name() != "sp-bags" {
		t.Fatal("name")
	}
}
