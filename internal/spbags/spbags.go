// Package spbags implements the Feng–Leiserson SP-bags algorithm, the
// classic serial determinacy-race detector for Cilk programs that the
// paper's SP+ algorithm extends (§5). SP-bags maintains, for each Cilk
// function F on the call stack, an S bag (IDs of F's completed descendants
// that are logically in series with the currently executing strand, plus F
// itself) and a P bag (IDs of completed descendants logically in parallel
// with it), in a disjoint-set forest. Two shadow spaces, reader and writer,
// record the last function to read and write each location; by
// pseudotransitivity of ‖, a single reader suffices.
//
// SP-bags has no notion of reducer views: it treats view-aware accesses
// like any other access. On programs that use reducers it therefore loses
// the paper's guarantees — it reports "races" between strands that share a
// view (false positives, see TestFig5FalsePositive in the spplus package)
// and its verdicts on reduce strands depend on bookkeeping it does not
// have. It is included as the baseline the evaluation compares against.
package spbags

import (
	"repro/internal/cilk"
	"repro/internal/core"
	"repro/internal/dsu"
	"repro/internal/mem"
	"repro/internal/obs"
)

type bagKind int8

const (
	kindS bagKind = iota
	kindP
)

type bag struct {
	kind bagKind
	root dsu.Elem
}

type frameRec struct {
	id    cilk.FrameID
	label string
	elem  dsu.Elem
	s     *bag
	p     *bag
}

// Detector runs SP-bags over the cilk event stream. Create one per run.
type Detector struct {
	cilk.Empty

	forest  *dsu.Forest
	stack   []*frameRec
	reader  *mem.Shadow
	writer  *mem.Shadow
	lin     core.Lineage
	report  core.Report
	current *frameRec

	// readerEv/writerEv shadow the same locations with the detector-relative
	// event ordinal of the recorded access, so a race report can point back
	// into the stream. Ordinals are truncated to int32 — adequate for any
	// trace the shadow space itself can hold.
	readerEv *mem.Shadow
	writerEv *mem.Shadow

	counts obs.EventCounts
	events int64 // ordinal of the event being processed (1-based)
}

// New returns a fresh SP-bags detector.
func New() *Detector {
	return &Detector{
		forest:   dsu.NewForest(256),
		reader:   mem.NewShadow(int32(dsu.None)),
		writer:   mem.NewShadow(int32(dsu.None)),
		readerEv: mem.NewShadow(0),
		writerEv: mem.NewShadow(0),
	}
}

// Name implements core.Detector.
func (d *Detector) Name() string { return "sp-bags" }

// Report implements core.Detector.
func (d *Detector) Report() *core.Report { return &d.report }

func (d *Detector) newBag(k bagKind) *bag { return &bag{kind: k, root: dsu.None} }

func (d *Detector) addToBag(b *bag, e dsu.Elem) {
	d.counts.BagOps++
	if b.root == dsu.None {
		b.root = e
		d.forest.SetPayload(e, b)
		return
	}
	b.root = d.forest.Union(b.root, e)
}

func (d *Detector) unionInto(dst, src *bag) {
	if src.root == dsu.None {
		return
	}
	d.counts.BagOps++
	if dst.root == dsu.None {
		dst.root = src.root
		d.forest.SetPayload(src.root, dst)
	} else {
		dst.root = d.forest.Union(dst.root, src.root)
	}
	src.root = dsu.None
}

func (d *Detector) top() *frameRec { return d.stack[len(d.stack)-1] }

// FrameEnter pushes S_G = {G} and P_G = {} for the new function G.
func (d *Detector) FrameEnter(f *cilk.Frame) {
	d.events++
	d.counts.FrameEnters++
	rec := &frameRec{id: f.ID, label: f.Label}
	rec.s = d.newBag(kindS)
	rec.p = d.newBag(kindP)
	rec.elem = d.forest.MakeSet(nil)
	d.addToBag(rec.s, rec.elem)
	parent := core.NoParent
	if len(d.stack) > 0 {
		parent = int32(d.top().elem)
	}
	d.lin.Add(int32(rec.elem), f.ID, f.Label, parent)
	d.stack = append(d.stack, rec)
	d.current = rec
}

// FrameReturn merges the child's bags into the parent: a spawned child's S
// bag becomes parallel work (into P_F); a called child's S bag stays serial
// (into S_F). The child synced before returning, so its P bag is empty.
func (d *Detector) FrameReturn(g, f *cilk.Frame) {
	d.events++
	d.counts.FrameReturns++
	if len(d.stack) < 2 {
		panic(core.Violatef("sp-bags", core.StreamOrder, g.ID,
			"return of frame %d with %d frames on the stack", g.ID, len(d.stack)))
	}
	grec := d.top()
	if grec.id != g.ID {
		panic(core.Violatef("sp-bags", core.StreamOrder, g.ID,
			"event order violation: return %d, top %d", g.ID, grec.id))
	}
	d.stack = d.stack[:len(d.stack)-1]
	frec := d.top()
	if g.Spawned {
		d.unionInto(frec.p, grec.s)
	} else {
		d.unionInto(frec.s, grec.s)
	}
	d.unionInto(frec.p, grec.p) // defensive: empty in well-formed runs
	d.current = frec
}

// Sync moves everything parallel into series: S_F ∪= P_F.
func (d *Detector) Sync(f *cilk.Frame) {
	d.events++
	d.counts.Syncs++
	if len(d.stack) == 0 {
		panic(core.Violatef("sp-bags", core.StreamOrder, f.ID, "sync before any frame entered"))
	}
	rec := d.top()
	d.unionInto(rec.s, rec.p)
}

func (d *Detector) bagOf(e dsu.Elem) *bag {
	return d.forest.Payload(e).(*bag)
}

func (d *Detector) access(op core.AccessOp) core.Access {
	e := int32(d.current.elem)
	return core.Access{Frame: d.current.id, Label: d.current.label, Path: d.lin.Path(e), Op: op}
}

func (d *Detector) prior(e dsu.Elem, op core.AccessOp) core.Access {
	return core.Access{
		Frame: d.lin.Frame(int32(e)), Label: d.lin.Label(int32(e)),
		Path: d.lin.Path(int32(e)), Op: op,
	}
}

// Load implements the SP-bags read rule: a race iff the last writer is in
// a P bag; the reader shadow advances only when the previous reader is in
// an S bag (pseudotransitivity of ‖ makes one reader sufficient).
func (d *Detector) Load(f *cilk.Frame, a mem.Addr) {
	d.events++
	d.counts.Loads++
	rec := d.current
	if rec == nil {
		panic(core.Violatef("sp-bags", core.StreamOrder, f.ID, "memory access before any frame entered"))
	}
	d.counts.ShadowLookups += 2
	if w := dsu.Elem(d.writer.Get(a)); w != dsu.None {
		if d.bagOf(w).kind == kindP {
			d.report.Add(core.Race{
				Kind: core.Determinacy, Addr: a,
				First:  d.prior(w, core.OpWrite),
				Second: d.access(core.OpRead),
				Prov:   d.prov(d.writerEv.Get(a), "writer in P-bag"),
			})
		}
	}
	if r := dsu.Elem(d.reader.Get(a)); r == dsu.None || d.bagOf(r).kind == kindS {
		d.reader.Set(a, int32(rec.elem))
		d.readerEv.Set(a, int32(d.events))
	}
}

// Store implements the SP-bags write rule: a race iff the last reader or
// last writer is in a P bag.
func (d *Detector) Store(f *cilk.Frame, a mem.Addr) {
	d.events++
	d.counts.Stores++
	rec := d.current
	if rec == nil {
		panic(core.Violatef("sp-bags", core.StreamOrder, f.ID, "memory access before any frame entered"))
	}
	d.counts.ShadowLookups += 2
	if r := dsu.Elem(d.reader.Get(a)); r != dsu.None && d.bagOf(r).kind == kindP {
		d.report.Add(core.Race{
			Kind: core.Determinacy, Addr: a,
			First:  d.prior(r, core.OpRead),
			Second: d.access(core.OpWrite),
			Prov:   d.prov(d.readerEv.Get(a), "reader in P-bag"),
		})
	}
	w := dsu.Elem(d.writer.Get(a))
	if w != dsu.None && d.bagOf(w).kind == kindP {
		d.report.Add(core.Race{
			Kind: core.Determinacy, Addr: a,
			First:  d.prior(w, core.OpWrite),
			Second: d.access(core.OpWrite),
			Prov:   d.prov(d.writerEv.Get(a), "writer in P-bag"),
		})
	}
	if w == dsu.None || d.bagOf(w).kind == kindS {
		d.writer.Set(a, int32(rec.elem))
		d.writerEv.Set(a, int32(d.events))
	}
}

var (
	_ core.Detector = (*Detector)(nil)
	_ cilk.Hooks    = (*Detector)(nil)
)

// prov assembles a Provenance for a race firing at the current event
// against a prior access recorded in an ordinal shadow.
func (d *Detector) prov(firstEv int32, relation string) core.Provenance {
	return core.Provenance{FirstEvent: int64(firstEv), SecondEvent: d.events, Relation: relation}
}

// Stats implements core.StatsProvider.
func (d *Detector) Stats() core.Stats {
	finds, unions := d.forest.Stats()
	return core.Stats{Elems: d.forest.Len(), Finds: finds, Unions: unions}
}

// EventCounts implements core.EventCountsProvider.
func (d *Detector) EventCounts() obs.EventCounts { return d.counts }
