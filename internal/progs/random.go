package progs

import (
	"math/rand"

	"repro/internal/cilk"
	"repro/internal/mem"
)

// RandomOpts configures the random-program generator used by the
// property-based tests that cross-validate the detectors against the dag
// oracle.
type RandomOpts struct {
	Seed     int64
	MaxDepth int // spawn/call nesting budget
	MaxStmts int // statements per frame
	Addrs    int // shared address pool size
	Reducers int // number of reducers
	// MonoidStores makes each reducer's Combine write to the reducer's
	// dedicated scratch address, so reduce strands perform instrumented
	// accesses (the Figure 1 pattern).
	MonoidStores bool
	// Reads sprinkles reducer-reads (get_value) through the program,
	// for view-read-race testing.
	Reads bool
	// NoReducers generates a purely view-oblivious program (updates and
	// reads become plain loads/stores), for baseline-equivalence tests.
	NoReducers bool
}

// Random returns a random but deterministic Cilk program: a seeded tree of
// spawns, calls, syncs, loads, stores, reducer updates and reducer reads
// over a small shared address pool. The structure is a function of the
// seed only — the serial execution order is schedule-independent, so the
// same seed yields the same program under every steal specification.
func Random(al *mem.Allocator, o RandomOpts) func(*cilk.Ctx) {
	if o.MaxDepth == 0 {
		o.MaxDepth = 4
	}
	if o.MaxStmts == 0 {
		o.MaxStmts = 6
	}
	if o.Addrs == 0 {
		o.Addrs = 8
	}
	if o.Reducers == 0 {
		o.Reducers = 2
	}
	pool := al.Alloc("pool", o.Addrs)
	scratch := al.Alloc("scratch", o.Reducers)

	return func(c *cilk.Ctx) {
		rng := rand.New(rand.NewSource(o.Seed))
		reds := make([]*cilk.Reducer, o.Reducers)
		for i := range reds {
			i := i
			m := cilk.MonoidFuncs(
				func(*cilk.Ctx) any { return 0 },
				func(cc *cilk.Ctx, l, r any) any {
					if o.MonoidStores {
						cc.Load(scratch.At(i))
						cc.Store(scratch.At(i))
					}
					return l.(int) + r.(int)
				},
			)
			reds[i] = c.NewReducerQuiet("r", m, 0)
		}
		var body func(c *cilk.Ctx, depth int)
		body = func(c *cilk.Ctx, depth int) {
			n := 1 + rng.Intn(o.MaxStmts)
			for s := 0; s < n; s++ {
				switch k := rng.Intn(10); {
				case k < 2: // load
					c.Load(pool.At(rng.Intn(o.Addrs)))
				case k < 4: // store
					c.Store(pool.At(rng.Intn(o.Addrs)))
				case k < 6 && depth > 0: // spawn
					c.Spawn("s", func(cc *cilk.Ctx) { body(cc, depth-1) })
				case k < 7 && depth > 0: // call
					c.Call("c", func(cc *cilk.Ctx) { body(cc, depth-1) })
				case k < 8: // sync
					c.Sync()
				case k < 9: // update a reducer; the body may touch the pool
					touch := rng.Intn(3)
					addr := pool.At(rng.Intn(o.Addrs))
					if o.NoReducers {
						c.Store(addr)
						continue
					}
					r := reds[rng.Intn(len(reds))]
					c.Update(r, func(cc *cilk.Ctx, v any) any {
						switch touch {
						case 0:
							cc.Load(addr)
						case 1:
							cc.Store(addr)
						}
						return v.(int) + 1
					})
				default: // reducer read
					if o.Reads && !o.NoReducers {
						c.Value(reds[rng.Intn(len(reds))])
					} else {
						c.Load(pool.At(rng.Intn(o.Addrs)))
					}
				}
			}
			c.Sync()
		}
		body(c, o.MaxDepth)
	}
}

// RandomSpec is a seeded steal specification stealing each continuation
// with probability P, with the given reduce order — the counterpart of
// Random for schedule-space exploration.
type RandomSpec struct {
	Seed   int64
	P      float64
	Reduce cilk.ReduceOrder
}

// ShouldSteal hashes the continuation's global sequence number with the
// seed for a stable pseudo-random decision.
func (s RandomSpec) ShouldSteal(ci cilk.ContInfo) bool {
	h := uint64(ci.Seq)*0x9e3779b97f4a7c15 + uint64(s.Seed)*0xbf58476d1ce4e5b9 + 0x94d049bb133111eb
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	return float64(h%1024)/1024 < s.P
}

// Order implements cilk.StealSpec.
func (s RandomSpec) Order() cilk.ReduceOrder { return s.Reduce }
