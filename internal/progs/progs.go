// Package progs contains small, well-understood Cilk programs used as
// fixtures throughout the repository: the paper's Figure 2 running-example
// dag, the Figure 1 linked-list program whose determinacy race hides inside
// a Reduce operation, and a handful of deliberately racy and race-free
// micro-programs. Tests, examples and the rader CLI all share these.
package progs

import (
	"repro/internal/cilk"
	"repro/internal/mem"
)

// SumMonoid is integer addition with identity 0.
var SumMonoid = cilk.MonoidFuncs(
	func(*cilk.Ctx) any { return 0 },
	func(_ *cilk.Ctx, l, r any) any { return l.(int) + r.(int) },
)

// Fig2 builds the running-example computation dag of the paper's Figure 2:
//
//	a: 1  spawn b   4  spawn c   10  call e   15  sync  16
//	b: 2 3
//	c: 5  spawn d   8  sync  9
//	d: 6 7
//	e: 11  spawn f  14  (implicit sync)
//	f: 12 13
//
// visit is invoked with the executing context at each numbered strand
// (1–16), in serial order, letting callers attach reducer-reads or memory
// accesses to specific strands. The peer-set equivalence classes of this
// dag are {1,16}, {2,3}, {4}, {5,9}, {6,7}, {8}, {10,11,15}, {12,13},
// {14} — every claim §3 and §4 make about it is checked in the tests.
func Fig2(visit func(c *cilk.Ctx, strand int)) func(*cilk.Ctx) {
	return func(c *cilk.Ctx) {
		visit(c, 1)
		c.Spawn("b", func(c *cilk.Ctx) {
			visit(c, 2)
			visit(c, 3)
		})
		visit(c, 4)
		c.Spawn("c", func(c *cilk.Ctx) {
			visit(c, 5)
			c.Spawn("d", func(c *cilk.Ctx) {
				visit(c, 6)
				visit(c, 7)
			})
			visit(c, 8)
			c.Sync()
			visit(c, 9)
		})
		visit(c, 10)
		c.Call("e", func(c *cilk.Ctx) {
			visit(c, 11)
			c.Spawn("f", func(c *cilk.Ctx) {
				visit(c, 12)
				visit(c, 13)
			})
			visit(c, 14)
			c.Sync()
		})
		visit(c, 15)
		c.Sync()
		visit(c, 16)
	}
}

// Fig2Reads returns the Figure 2 program with a single reducer that is
// read (get_value) at exactly the listed strands. The reducer itself is
// constructed quietly, as if it were a global built before the computation,
// so only the listed reads participate in view-read race detection.
func Fig2Reads(readAt ...int) func(*cilk.Ctx) {
	set := make(map[int]bool, len(readAt))
	for _, s := range readAt {
		set[s] = true
	}
	return func(c *cilk.Ctx) {
		r := c.NewReducerQuiet("h", SumMonoid, 0)
		Fig2(func(cc *cilk.Ctx, strand int) {
			if set[strand] {
				cc.Value(r)
			}
		})(c)
	}
}

// Fig2Strands is the number of strands in the Figure 2 fixture.
const Fig2Strands = 16

// Fig2PeerClasses are the peer-set equivalence classes of the Figure 2
// dag: reads within one class are race-free, reads across classes race.
var Fig2PeerClasses = [][]int{
	{1, 16}, {2, 3}, {4}, {5, 9}, {6, 7}, {8}, {10, 11, 15}, {12, 13}, {14},
}

// Fig5 builds the performance-dag example of the paper's Figure 5 and the
// §6 walk-through: function a spawns b, then c (which spawns d), then e
// (which spawns f), then syncs. Run it under Fig5Spec to steal a's three
// continuations (views α, β, γ, δ) and schedule the reductions as in the
// figure: r0 reduces α and β right after c returns, r1 reduces γ and δ at
// the sync, then r2 reduces the two survivors.
//
// visit is called at each site: "a:1".."a:5" for a's strands, and "b",
// "c:1","c:2","c:3", "d", "e:1","e:2", "f" inside the children. Every
// function updates a tag-list reducer so all four views materialize (a's
// fourth strand updates too, giving δ a view); reduceProbe observes each
// Reduce operation's inputs, letting tests issue instrumented accesses from
// inside a specific reduce strand — the paper's r1 is the Combine whose
// left view starts with "e".
func Fig5(visit func(*cilk.Ctx, string), reduceProbe func(c *cilk.Ctx, left, right []string)) func(*cilk.Ctx) {
	tagMonoid := cilk.MonoidFuncs(
		func(*cilk.Ctx) any { return []string(nil) },
		func(c *cilk.Ctx, l, r any) any {
			lt, rt := l.([]string), r.([]string)
			if reduceProbe != nil {
				reduceProbe(c, lt, rt)
			}
			return append(lt, rt...)
		},
	)
	return func(c *cilk.Ctx) {
		r := c.NewReducerQuiet("h", tagMonoid, []string{"a"})
		upd := func(cc *cilk.Ctx, tag string) {
			cc.Update(r, func(_ *cilk.Ctx, v any) any { return append(v.([]string), tag) })
		}
		visit(c, "a:1")
		c.Spawn("b", func(cc *cilk.Ctx) {
			visit(cc, "b")
			upd(cc, "b")
		})
		visit(c, "a:2")
		c.Spawn("c", func(cc *cilk.Ctx) {
			visit(cc, "c:1")
			upd(cc, "c")
			cc.Spawn("d", func(ccc *cilk.Ctx) {
				visit(ccc, "d")
				upd(ccc, "d")
			})
			visit(cc, "c:2")
			cc.Sync()
			visit(cc, "c:3")
		})
		visit(c, "a:3")
		c.Spawn("e", func(cc *cilk.Ctx) {
			visit(cc, "e:1")
			upd(cc, "e")
			cc.Spawn("f", func(ccc *cilk.Ctx) {
				visit(ccc, "f")
				upd(ccc, "f")
			})
			visit(cc, "e:2")
			cc.Sync()
		})
		visit(c, "a:4")
		upd(c, "a4") // gives the δ context a view, so r1 runs user code
		c.Sync()
		visit(c, "a:5")
	}
}

// Fig5Spec is the schedule of Figure 5: steal all three continuations of
// the root function (minting views β, γ, δ) and reduce α⊗β (r0) as soon as
// c returns; the remaining reductions r1 = γ⊗δ and r2 = α⊗γ run at the
// sync, newest pair first.
type Fig5Spec struct{}

// ShouldSteal steals exactly the root function's continuations.
func (Fig5Spec) ShouldSteal(ci cilk.ContInfo) bool { return ci.Depth == 0 }

// Order implements cilk.StealSpec.
func (Fig5Spec) Order() cilk.ReduceOrder { return cilk.ReduceAtSync }

// ReducesAfterReturn schedules r0 right after the root's second spawned
// child (function c) returns.
func (Fig5Spec) ReducesAfterReturn(ci cilk.ContInfo) int {
	if ci.Depth == 0 && ci.Index == 2 {
		return 1
	}
	return 0
}

// ListNode models one node of the MyList singly linked list from the
// paper's Figure 1: user-defined, with head/tail pointers for O(1)
// concatenation. The "memory" the detectors watch is the Next-pointer slot
// of each node, which lives in a mem.Region supplied by the caller.
type ListNode struct {
	Value int
	Next  *ListNode
	Slot  int // index of this node's next-pointer in the list's region
}

// MyList is the Figure 1 list: head/tail plus the instrumented region
// holding one address per potential node.
type MyList struct {
	Head, Tail *ListNode
	Region     mem.Region
	nextSlot   *int // shared slot allocator, so copies stay consistent
}

// NewMyList creates an empty list whose node next-pointers live in region.
func NewMyList(region mem.Region) *MyList {
	n := 0
	return &MyList{Region: region, nextSlot: &n}
}

// ShallowCopy reproduces the Figure 1 bug: a new MyList object with its own
// head and tail pointers that still aliases the original nodes.
func (l *MyList) ShallowCopy() *MyList {
	return &MyList{Head: l.Head, Tail: l.Tail, Region: l.Region, nextSlot: l.nextSlot}
}

// EmptyLike returns an empty list sharing l's region and slot allocator, so
// its nodes never alias nodes of l — the building block of a correct deep
// copy.
func (l *MyList) EmptyLike() *MyList {
	return &MyList{Region: l.Region, nextSlot: l.nextSlot}
}

// Append inserts value at the tail, writing the predecessor's next pointer
// (an instrumented store) exactly as a real linked-list insert would.
func (l *MyList) Append(c *cilk.Ctx, value int) {
	slot := *l.nextSlot
	*l.nextSlot++
	n := &ListNode{Value: value, Slot: slot}
	if l.Tail == nil {
		l.Head, l.Tail = n, n
		return
	}
	c.Store(l.Region.At(l.Tail.Slot)) // write tail.Next
	l.Tail.Next = n
	l.Tail = n
}

// Concat splices other onto l in O(1), writing l's tail next pointer. This
// is what the list monoid's Reduce does — the write that races in Figure 1.
func (l *MyList) Concat(c *cilk.Ctx, other *MyList) {
	if other.Head == nil {
		return
	}
	if l.Tail == nil {
		l.Head, l.Tail = other.Head, other.Tail
		return
	}
	c.Store(l.Region.At(l.Tail.Slot)) // write tail.Next — the racy write
	l.Tail.Next = other.Head
	l.Tail = other.Tail
}

// Scan walks the list reading each node's next pointer (instrumented
// loads), returning the length — the paper's scan_list.
func (l *MyList) Scan(c *cilk.Ctx) int {
	n := 0
	for node := l.Head; node != nil; node = node.Next {
		c.Load(l.Region.At(node.Slot)) // read node.Next
		n++
	}
	return n
}

// Values returns the list contents, uninstrumented, for verification.
func (l *MyList) Values() []int {
	var out []int
	for node := l.Head; node != nil; node = node.Next {
		out = append(out, node.Value)
	}
	return out
}

// ListMonoid is the list_monoid of Figure 1: identity is an empty list
// sharing the same region; Reduce concatenates, performing the
// instrumented tail-next write.
func ListMonoid(region mem.Region, nextSlot *int) cilk.Monoid {
	return cilk.MonoidFuncs(
		func(*cilk.Ctx) any {
			return &MyList{Region: region, nextSlot: nextSlot}
		},
		func(c *cilk.Ctx, l, r any) any {
			left, right := l.(*MyList), r.(*MyList)
			left.Concat(c, right)
			return left
		},
	)
}

// Fig1Options tweak the Figure 1 program to exhibit its different bugs.
type Fig1Options struct {
	// N is the number of parallel list inserts update_list performs.
	N int
	// EarlyGetValue moves the get_value before the cilk_sync in
	// update_list, creating the view-read race §3 discusses.
	EarlyGetValue bool
	// SetValueAfterSpawn moves set_value after the spawn of foo, the other
	// view-read race variation §3 discusses (benign if foo does not
	// update, but still a race under peer-set semantics).
	SetValueAfterSpawn bool
	// DeepCopy fixes the §2 bug by deep-copying the list in race(), so the
	// scan and the inserts touch disjoint memory.
	DeepCopy bool
}

// Fig1 builds the paper's Figure 1 program: race() spawns scan_list(list)
// and calls update_list(n, copy) where copy shares nodes with list due to a
// shallow copy. The determinacy race is between scan_list's read of the
// last node's next pointer and the write of that same pointer performed
// inside the list reducer's Reduce operation. The returned program expects
// its node region in al.
func Fig1(al *mem.Allocator, opts Fig1Options) func(*cilk.Ctx) {
	if opts.N == 0 {
		opts.N = 4
	}
	region := al.Alloc("list-nodes", 16+4*opts.N)
	return func(c *cilk.Ctx) {
		list := NewMyList(region)
		// Seed the list with a few nodes before any parallelism.
		for i := 0; i < 3; i++ {
			list.Append(c, i)
		}
		var copy *MyList
		if opts.DeepCopy {
			copy = list.EmptyLike()
			for _, v := range list.Values() {
				copy.Append(c, v)
			}
		} else {
			copy = list.ShallowCopy()
		}
		// race(): length = cilk_spawn scan_list(list); update_list(n, copy);
		c.Spawn("scan_list", func(c *cilk.Ctx) {
			list.Scan(c)
		})
		c.Call("update_list", func(c *cilk.Ctx) {
			updateList(c, opts, copy, region)
		})
		c.Sync()
	}
}

func updateList(c *cilk.Ctx, opts Fig1Options, list *MyList, region mem.Region) {
	monoid := ListMonoid(region, list.nextSlot)
	r := c.NewReducer("list_reducer", monoid, list.EmptyLike())
	if !opts.SetValueAfterSpawn {
		c.SetValue(r, list)
	}
	// int x = cilk_spawn foo(n, list_reducer);
	c.Spawn("foo", func(c *cilk.Ctx) {
		c.Update(r, func(c *cilk.Ctx, v any) any {
			l := v.(*MyList)
			l.Append(c, 100)
			return l
		})
	})
	if opts.SetValueAfterSpawn {
		c.SetValue(r, list)
	}
	// cilk_for inserting n elements through the reducer.
	c.ParForGrain("insert", opts.N, 1, func(c *cilk.Ctx, i int) {
		c.Update(r, func(c *cilk.Ctx, v any) any {
			l := v.(*MyList)
			l.Append(c, 200+i)
			return l
		})
	})
	if opts.EarlyGetValue {
		c.Value(r)
	}
	c.Sync()
	if !opts.EarlyGetValue {
		c.Value(r)
	}
}

// SweepStress is the prefix-sharing benchmark program: a long serial
// preamble of instrumented accesses followed by a flat row of spawns whose
// children each touch a private slice of the region and bump a sum
// reducer. Every §7 specification of this program shares the preamble —
// the first continuation probe fires only after the first child returns —
// so a prefix-sharing sweep pays the preamble's detector cost once, while
// the naive sweep pays it once per specification. The program is race-free
// and ostensibly deterministic; with spawns = 7 its §7 family has 92
// members, comfortably past the ≥50-spec bar the benchmark calls for.
func SweepStress(al *mem.Allocator, spawns, preamble, body int) func(*cilk.Ctx) {
	region := al.Alloc("sweep-stress", preamble+spawns*body)
	return func(c *cilk.Ctx) {
		r := c.NewReducer("acc", SumMonoid, 0)
		for i := 0; i < preamble; i++ {
			c.Store(region.At(i))
			c.Load(region.At(i))
		}
		for s := 0; s < spawns; s++ {
			s := s
			c.Spawn("w", func(c *cilk.Ctx) {
				base := preamble + s*body
				for j := 0; j < body; j++ {
					c.Store(region.At(base + j))
					c.Load(region.At(base + j))
				}
				c.Update(r, func(_ *cilk.Ctx, v any) any { return v.(int) + 1 })
			})
		}
		c.Sync()
	}
}

// ReducerBench is the cheetah reducer_bench-style intsum stress loop: one
// flat row of spawns — 100 in the canonical configuration — whose children
// each add their index into a single int-sum reducer, with no other
// instrumented memory. It is the reducer-heavy program that makes 10^4+
// §7 families realistic: every continuation of the row lands in one sync
// block, so MaxSyncBlock equals spawns and the reduce family alone has
// K² + C(K,3) members (spawns = 40 → ~13k specifications, spawns = 100 →
// ~171k). The program is race-free and ostensibly deterministic; the
// returned sum is Σ i for i < spawns under every schedule, which the
// sweep's byte-identical verdicts across strategies implicitly re-prove.
func ReducerBench(al *mem.Allocator, spawns int) func(*cilk.Ctx) {
	// One token address per spawn keeps the shadow spaces materialized
	// enough for snapshot handoffs to carry real pages without dominating
	// unit cost.
	region := al.Alloc("reducer-bench", spawns)
	return func(c *cilk.Ctx) {
		r := c.NewReducer("intsum", SumMonoid, 0)
		for i := 0; i < spawns; i++ {
			i := i
			c.Spawn("add", func(c *cilk.Ctx) {
				c.Store(region.At(i))
				c.Update(r, func(_ *cilk.Ctx, v any) any { return v.(int) + i })
			})
		}
		c.Sync()
	}
}
