package progs

import (
	"fmt"
	"testing"

	"repro/internal/cilk"
	"repro/internal/mem"
)

func TestMyListAppendScan(t *testing.T) {
	al := mem.NewAllocator()
	region := al.Alloc("nodes", 16)
	var n int
	cilk.Run(func(c *cilk.Ctx) {
		l := NewMyList(region)
		for i := 0; i < 5; i++ {
			l.Append(c, i*10)
		}
		n = l.Scan(c)
		if fmt.Sprint(l.Values()) != "[0 10 20 30 40]" {
			t.Errorf("values = %v", l.Values())
		}
	}, cilk.Config{})
	if n != 5 {
		t.Fatalf("scan = %d, want 5", n)
	}
}

func TestMyListConcat(t *testing.T) {
	al := mem.NewAllocator()
	region := al.Alloc("nodes", 16)
	cilk.Run(func(c *cilk.Ctx) {
		a := NewMyList(region)
		b := a.EmptyLike()
		a.Append(c, 1)
		a.Append(c, 2)
		b.Append(c, 3)
		a.Concat(c, b)
		if fmt.Sprint(a.Values()) != "[1 2 3]" {
			t.Errorf("concat = %v", a.Values())
		}
		// Concat with empty other and into empty receiver.
		e := a.EmptyLike()
		a.Concat(c, e)
		if len(a.Values()) != 3 {
			t.Error("concat with empty changed the list")
		}
		e2 := a.EmptyLike()
		e2.Concat(c, a)
		if fmt.Sprint(e2.Values()) != "[1 2 3]" {
			t.Errorf("empty.Concat = %v", e2.Values())
		}
	}, cilk.Config{})
}

func TestShallowCopyAliases(t *testing.T) {
	al := mem.NewAllocator()
	region := al.Alloc("nodes", 16)
	cilk.Run(func(c *cilk.Ctx) {
		a := NewMyList(region)
		a.Append(c, 1)
		sc := a.ShallowCopy()
		if sc.Head != a.Head || sc.Tail != a.Tail {
			t.Error("shallow copy must alias nodes")
		}
		dc := a.EmptyLike()
		for _, v := range a.Values() {
			dc.Append(c, v)
		}
		if dc.Head == a.Head {
			t.Error("deep copy must not alias nodes")
		}
	}, cilk.Config{})
}

func TestFig1ResultDeterministic(t *testing.T) {
	// Despite the (shallow-copy) race in its memory accesses, the Fig 1
	// program's reducer value — the final list contents — is still the
	// serial outcome in our serial simulation under every schedule.
	final := func(spec cilk.StealSpec) int {
		al := mem.NewAllocator()
		prog := Fig1(al, Fig1Options{N: 6})
		res := cilk.Run(prog, cilk.Config{Spec: spec})
		return res.Frames
	}
	base := final(nil)
	for _, spec := range []cilk.StealSpec{cilk.StealAll{}, cilk.StealAll{Reduce: cilk.ReduceEager}} {
		if got := final(spec); got != base {
			t.Fatalf("frame count differs across schedules: %d vs %d", got, base)
		}
	}
}

func TestFig2VisitOrder(t *testing.T) {
	var order []int
	cilk.Run(Fig2(func(_ *cilk.Ctx, s int) { order = append(order, s) }), cilk.Config{})
	if len(order) != Fig2Strands {
		t.Fatalf("visited %d strands", len(order))
	}
	for i, s := range order {
		if s != i+1 {
			t.Fatalf("serial order broken: %v", order)
		}
	}
}

func TestFig2PeerClassesCoverAllStrands(t *testing.T) {
	seen := map[int]bool{}
	for _, class := range Fig2PeerClasses {
		for _, s := range class {
			if seen[s] {
				t.Fatalf("strand %d in two classes", s)
			}
			seen[s] = true
		}
	}
	for s := 1; s <= Fig2Strands; s++ {
		if !seen[s] {
			t.Fatalf("strand %d unclassified", s)
		}
	}
}

func TestFig5SpecShape(t *testing.T) {
	res := cilk.Run(Fig5(func(*cilk.Ctx, string) {}, nil), cilk.Config{Spec: Fig5Spec{}})
	if res.Views != 3 || res.Reduces != 3 {
		t.Fatalf("views=%d reduces=%d, want 3/3", res.Views, res.Reduces)
	}
	// The three steals are the root's three continuations.
	for i, ci := range res.Steals {
		if ci.Depth != 0 || ci.Index != i+1 {
			t.Fatalf("steal %d = %+v", i, ci)
		}
	}
}

func TestRandomProgramsTerminateAndAreStable(t *testing.T) {
	totalSpawns := 0
	for seed := int64(0); seed < 20; seed++ {
		al := mem.NewAllocator()
		// Without monoid stores, the access counts are entirely
		// view-oblivious-or-update work and schedule-independent.
		prog := Random(al, RandomOpts{Seed: seed, Reads: true})
		a := cilk.Run(prog, cilk.Config{})
		b := cilk.Run(prog, cilk.Config{Spec: cilk.StealAll{}})
		if a.Frames != b.Frames || a.Spawns != b.Spawns ||
			a.Loads != b.Loads || a.Stores != b.Stores {
			t.Fatalf("seed %d: structure differs across schedules", seed)
		}
		// With monoid stores, reduce strands add schedule-dependent
		// accesses, but the frame structure stays fixed.
		al2 := mem.NewAllocator()
		prog2 := Random(al2, RandomOpts{Seed: seed, MonoidStores: true})
		c := cilk.Run(prog2, cilk.Config{})
		d := cilk.Run(prog2, cilk.Config{Spec: cilk.StealAll{}})
		if c.Frames != d.Frames || c.Spawns != d.Spawns {
			t.Fatalf("seed %d: frame structure differs across schedules", seed)
		}
		if d.Reduces > 0 && d.Stores == c.Stores && d.Views > 0 {
			// reduces with both views present should have added stores
			// at least sometimes; not per-seed guaranteed, so no assert.
			_ = d
		}
		totalSpawns += a.Spawns
	}
	if totalSpawns < 40 {
		t.Fatalf("generator too tame: %d spawns across 20 seeds", totalSpawns)
	}
}

func TestRandomSpecDeterministicDecisions(t *testing.T) {
	s := RandomSpec{Seed: 3, P: 0.5}
	ci := cilk.ContInfo{Seq: 17}
	first := s.ShouldSteal(ci)
	for i := 0; i < 10; i++ {
		if s.ShouldSteal(ci) != first {
			t.Fatal("RandomSpec must be a pure function of (seed, seq)")
		}
	}
	// P=0 and P=1 extremes.
	none := RandomSpec{Seed: 1, P: 0}
	all := RandomSpec{Seed: 1, P: 1}
	for seq := 1; seq < 100; seq++ {
		ci := cilk.ContInfo{Seq: seq}
		if none.ShouldSteal(ci) {
			t.Fatal("P=0 must never steal")
		}
		if !all.ShouldSteal(ci) {
			t.Fatal("P=1 must always steal")
		}
	}
}
