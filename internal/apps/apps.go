// Package apps contains the six application benchmarks of the paper's
// evaluation (Figure 7), rebuilt as instrumented Cilk programs over
// synthetic workloads:
//
//	collision — collision detection in 3-D (hypervector reducer)
//	dedup     — compression program (ostream reducer; PARSEC-derived)
//	ferret    — image similarity search (ostream reducer; PARSEC-derived)
//	fib       — recursive Fibonacci (opadd reducer; synthetic stress test)
//	knapsack  — recursive knapsack (user-defined max-struct reducer)
//	pbfs      — parallel breadth-first search (bag reducer)
//
// Each app builds an Instance: a program exercising the cilk API with the
// memory accesses on its raced-on data instrumented, plus a verifier that
// recomputes the answer serially. Instances come in three scales so the
// same code serves unit tests, the rader CLI, and the Figure 7/8 harness.
package apps

import (
	"fmt"

	"repro/internal/cilk"
	"repro/internal/mem"
)

// Scale selects the input size.
type Scale int

// Scales: Test keeps unit tests fast, Small suits the CLI and examples,
// Bench approximates the paper's input sizes scaled to this interpreter.
const (
	Test Scale = iota
	Small
	Bench
)

// String implements fmt.Stringer.
func (s Scale) String() string {
	switch s {
	case Test:
		return "test"
	case Small:
		return "small"
	case Bench:
		return "bench"
	default:
		return fmt.Sprintf("Scale(%d)", int(s))
	}
}

// Instance is one runnable benchmark configuration.
type Instance struct {
	// Prog is the Cilk program. Fresh per run: call Build again to rerun
	// (programs carry mutable workload state such as distance arrays).
	Prog func(*cilk.Ctx)
	// Verify checks the program's result against a serial recomputation;
	// call after the run.
	Verify func() error
	// InputDesc describes the input, mirroring Figure 7's input column.
	InputDesc string
}

// App is one benchmark.
type App struct {
	Name string
	Desc string // Figure 7's description column
	// Build constructs a fresh instance at the given scale, registering
	// instrumented regions with al.
	Build func(al *mem.Allocator, scale Scale) *Instance
}

// All returns the six benchmarks in Figure 7's (alphabetical) order.
func All() []App {
	return []App{
		Collision(),
		Dedup(),
		Ferret(),
		Fib(),
		Knapsack(),
		PBFS(),
	}
}

// ByName looks up one benchmark.
func ByName(name string) (App, error) {
	for _, a := range All() {
		if a.Name == name {
			return a, nil
		}
	}
	return App{}, fmt.Errorf("apps: unknown benchmark %q (have collision, dedup, ferret, fib, knapsack, pbfs)", name)
}
