package apps

import (
	"fmt"
	"sort"

	"repro/internal/cilk"
	"repro/internal/mem"
	"repro/internal/reducer"
	"repro/internal/workload"
)

// pairKey encodes a colliding pair for verification.
func pairKey(i, j int) int64 { return int64(i)<<32 | int64(j) }

// Collision is the 3-D collision-detection benchmark: all candidate pairs
// of spheres are tested in parallel and colliding pairs are appended to a
// "hypervector" reducer, the appendable-vector hyperobject the paper's
// collision benchmark uses. The parallel loop runs over the first index
// with each task scanning a stripe of partners, so the hypervector takes
// one append per hit and the reduce operations concatenate stripes back
// into serial order.
func Collision() App {
	return App{
		Name: "collision",
		Desc: "Collision detection in 3D",
		Build: func(al *mem.Allocator, scale Scale) *Instance {
			n := map[Scale]int{Test: 40, Small: 120, Bench: 900}[scale]
			bodies := workload.RandomBodies(31, n)
			region := al.Alloc("bodies", n)
			var got []int64
			ins := &Instance{InputDesc: fmt.Sprint(n)}
			ins.Prog = func(c *cilk.Ctx) {
				h := reducer.New[*reducer.Hypervector[int64]](
					c, "hits", reducer.HypervectorMonoid[int64](), &reducer.Hypervector[int64]{})
				c.ParForGrain("pairs", n, 4, func(cc *cilk.Ctx, i int) {
					cc.Load(region.At(i))
					for j := i + 1; j < n; j++ {
						cc.Load(region.At(j))
						if workload.Collides(bodies[i], bodies[j]) {
							key := pairKey(i, j)
							h.Update(cc, func(_ *cilk.Ctx, v *reducer.Hypervector[int64]) *reducer.Hypervector[int64] {
								v.Append(key)
								return v
							})
						}
					}
				})
				got = h.Value(c).Elems
			}
			ins.Verify = func() error {
				var want []int64
				for i := 0; i < n; i++ {
					for j := i + 1; j < n; j++ {
						if workload.Collides(bodies[i], bodies[j]) {
							want = append(want, pairKey(i, j))
						}
					}
				}
				if len(got) != len(want) {
					return fmt.Errorf("collision found %d pairs, want %d", len(got), len(want))
				}
				// The hypervector preserves serial order exactly.
				if !sort.SliceIsSorted(got, func(a, b int) bool { return got[a] < got[b] }) {
					return fmt.Errorf("collision output not in serial order")
				}
				for k := range want {
					if got[k] != want[k] {
						return fmt.Errorf("pair %d = %x, want %x", k, got[k], want[k])
					}
				}
				return nil
			}
			return ins
		},
	}
}
