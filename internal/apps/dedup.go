package apps

import (
	"bytes"
	"fmt"
	"hash/fnv"

	"repro/internal/cilk"
	"repro/internal/mem"
	"repro/internal/reducer"
	"repro/internal/workload"
)

// Dedup is the compression benchmark derived from PARSEC's dedup,
// restructured (as the paper did) to use Cilk linguistics and a
// reducer_ostream for its output. The stream is cut into content-defined
// chunks by a rolling-hash chunker (PARSEC dedup's Rabin stage); chunks
// are fingerprinted in parallel (the instrumented reads); duplicate
// decisions are made serially against the fingerprint table in stream
// order; then each chunk is emitted in parallel — a back-reference for
// duplicates, a run-length-compressed payload for fresh chunks — through
// the ostream reducer, so the archive is byte-identical to the serial one
// regardless of scheduling.
func Dedup() App {
	return App{
		Name: "dedup",
		Desc: "Compression program",
		Build: func(al *mem.Allocator, scale Scale) *Instance {
			var blocks int
			switch scale {
			case Test:
				blocks = 64
			case Small:
				blocks = 512
			default:
				blocks = 12_000
			}
			const blockSize = 64
			corpus := workload.RandomCorpus(53, blocks, blockSize, 0.5)
			ends := workload.ChunkBoundaries(corpus.Data, 32, 64, 512)
			chunks := len(ends)
			dataRegion := al.Alloc("corpus", len(corpus.Data)/8+1) // one addr per 8 bytes
			fpRegion := al.Alloc("fingerprints", chunks)
			var got []byte
			ins := &Instance{InputDesc: fmt.Sprintf("%d KB, %d CDC chunks", len(corpus.Data)/1024, chunks)}
			ins.Prog = func(c *cilk.Ctx) {
				fps := make([]uint64, chunks)
				// Phase 1: fingerprint chunks in parallel.
				c.ParForGrain("fingerprint", chunks, 8, func(cc *cilk.Ctx, i int) {
					start := chunkStart(ends, i)
					chunk := corpus.Data[start:ends[i]]
					cc.LoadRange(dataRegion.At(start/8), len(chunk)/8+1)
					fps[i] = fingerprint(chunk)
					cc.Store(fpRegion.At(i))
				})
				// Phase 2: serial duplicate detection in stream order.
				firstOf := make(map[uint64]int, chunks)
				dupOf := make([]int, chunks)
				for i := 0; i < chunks; i++ {
					c.Load(fpRegion.At(i))
					if j, ok := firstOf[fps[i]]; ok {
						dupOf[i] = j
					} else {
						firstOf[fps[i]] = i
						dupOf[i] = -1
					}
				}
				// Phase 3: emit the archive in parallel via the ostream.
				h := reducer.New[*reducer.Ostream](c, "archive", reducer.OstreamMonoid(), &reducer.Ostream{})
				c.ParForGrain("emit", chunks, 8, func(cc *cilk.Ctx, i int) {
					var rec []byte
					if dupOf[i] >= 0 {
						rec = encodeRef(i, dupOf[i])
					} else {
						start := chunkStart(ends, i)
						chunk := corpus.Data[start:ends[i]]
						cc.LoadRange(dataRegion.At(start/8), len(chunk)/8+1)
						rec = encodeChunk(i, chunk)
					}
					h.Update(cc, func(_ *cilk.Ctx, o *reducer.Ostream) *reducer.Ostream {
						o.Write(rec)
						return o
					})
				})
				got = h.Value(c).Bytes()
			}
			ins.Verify = func() error {
				want := serialDedup(corpus.Data, ends)
				if !bytes.Equal(got, want) {
					return fmt.Errorf("archive differs: got %d bytes, want %d", len(got), len(want))
				}
				// The archive must also decompress back to the input.
				back, err := decodeArchive(got, ends)
				if err != nil {
					return err
				}
				if !bytes.Equal(back, corpus.Data) {
					return fmt.Errorf("round trip failed")
				}
				return nil
			}
			return ins
		},
	}
}

func chunkStart(ends []int, i int) int {
	if i == 0 {
		return 0
	}
	return ends[i-1]
}

func fingerprint(chunk []byte) uint64 {
	f := fnv.New64a()
	f.Write(chunk)
	return f.Sum64()
}

// encodeRef emits a back-reference record: 'R', chunk index, target index.
func encodeRef(i, j int) []byte {
	return []byte(fmt.Sprintf("R %d %d\n", i, j))
}

// encodeChunk emits a fresh-chunk record with run-length-encoded payload.
func encodeChunk(i int, chunk []byte) []byte {
	var b bytes.Buffer
	fmt.Fprintf(&b, "C %d ", i)
	for p := 0; p < len(chunk); {
		q := p
		for q < len(chunk) && chunk[q] == chunk[p] && q-p < 255 {
			q++
		}
		b.WriteByte(byte(q - p))
		b.WriteByte(chunk[p])
		p = q
	}
	b.WriteByte('\n')
	return b.Bytes()
}

func serialDedup(data []byte, ends []int) []byte {
	firstOf := make(map[uint64]int, len(ends))
	var out bytes.Buffer
	for i := range ends {
		chunk := data[chunkStart(ends, i):ends[i]]
		fp := fingerprint(chunk)
		if j, ok := firstOf[fp]; ok {
			out.Write(encodeRef(i, j))
		} else {
			firstOf[fp] = i
			out.Write(encodeChunk(i, chunk))
		}
	}
	return out.Bytes()
}

// decodeArchive reverses the encoding, reconstructing the input stream
// given the chunk boundaries the encoder used.
func decodeArchive(arch []byte, ends []int) ([]byte, error) {
	chunks := len(ends)
	total := 0
	if chunks > 0 {
		total = ends[chunks-1]
	}
	out := make([]byte, total)
	decoded := make([]bool, chunks)
	pos := 0
	readInt := func() (int, error) {
		n := 0
		seen := false
		for pos < len(arch) && arch[pos] >= '0' && arch[pos] <= '9' {
			n = n*10 + int(arch[pos]-'0')
			pos++
			seen = true
		}
		if !seen {
			return 0, fmt.Errorf("dedup: bad integer at %d", pos)
		}
		return n, nil
	}
	for pos < len(arch) {
		kind := arch[pos]
		if pos+1 >= len(arch) || arch[pos+1] != ' ' {
			return nil, fmt.Errorf("dedup: malformed record at %d", pos)
		}
		pos += 2 // kind and space
		i, err := readInt()
		if err != nil {
			return nil, err
		}
		if i < 0 || i >= chunks {
			return nil, fmt.Errorf("dedup: chunk index %d out of range", i)
		}
		if pos >= len(arch) || arch[pos] != ' ' {
			return nil, fmt.Errorf("dedup: malformed record body at %d", pos)
		}
		pos++ // space
		dst := out[chunkStart(ends, i):ends[i]]
		switch kind {
		case 'R':
			j, err := readInt()
			if err != nil {
				return nil, err
			}
			if j < 0 || j >= chunks || !decoded[j] {
				return nil, fmt.Errorf("dedup: bad reference %d -> %d", i, j)
			}
			src := out[chunkStart(ends, j):ends[j]]
			if len(src) != len(dst) {
				return nil, fmt.Errorf("dedup: reference %d -> %d size mismatch", i, j)
			}
			copy(dst, src)
			if pos >= len(arch) || arch[pos] != '\n' {
				return nil, fmt.Errorf("dedup: reference %d missing terminator", i)
			}
			pos++ // newline
		case 'C':
			// Payload bytes are arbitrary (runs may encode 0x0a), so
			// decode by length: RLE pairs until the chunk is full, then a
			// terminating newline.
			at := 0
			for at < len(dst) {
				if pos+1 >= len(arch) {
					return nil, fmt.Errorf("dedup: truncated chunk %d", i)
				}
				run, b := int(arch[pos]), arch[pos+1]
				pos += 2
				if at+run > len(dst) {
					return nil, fmt.Errorf("dedup: chunk %d overflows", i)
				}
				for r := 0; r < run; r++ {
					dst[at] = b
					at++
				}
			}
			if pos >= len(arch) || arch[pos] != '\n' {
				return nil, fmt.Errorf("dedup: chunk %d missing terminator", i)
			}
			pos++ // newline
		default:
			return nil, fmt.Errorf("dedup: bad record kind %q at %d", kind, pos-2)
		}
		decoded[i] = true
	}
	return out, nil
}
