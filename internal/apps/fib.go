package apps

import (
	"fmt"

	"repro/internal/cilk"
	"repro/internal/mem"
	"repro/internal/reducer"
)

// Fib is the synthetic stress test the paper devised for Rader: each
// function call does almost no work besides spawning, updating an opadd
// reducer and (under steals) reducing views, so detector overhead has
// nothing to amortize against — which is why fib shows the worst
// multiplicative overheads in Figure 7 (36.90× for check-updates, 75.60×
// for check-reductions).
func Fib() App {
	return App{
		Name: "fib",
		Desc: "Recursive Fibonacci",
		Build: func(al *mem.Allocator, scale Scale) *Instance {
			n := map[Scale]int{Test: 12, Small: 16, Bench: 23}[scale]
			// Each frame gets a private address for its result local,
			// mirroring what ThreadSanitizer instrumentation sees of the
			// C stack. Addresses are taken from a dedicated block rather
			// than per-frame Alloc calls to keep the region table small.
			frames := 2*fibValue(n+1) + 1
			region := al.Alloc("fib-locals", frames)
			var got int
			var calls int
			ins := &Instance{InputDesc: fmt.Sprint(n)}
			ins.Prog = func(c *cilk.Ctx) {
				next := 0
				addr := func() mem.Addr {
					a := region.At(next)
					next++
					return a
				}
				h := reducer.New[int](c, "calls", reducer.OpAdd[int](), 0)
				var rec func(c *cilk.Ctx, n int) int
				rec = func(c *cilk.Ctx, n int) int {
					h.Update(c, func(_ *cilk.Ctx, v int) int { return v + 1 })
					if n < 2 {
						return n
					}
					local := addr()
					var a, b int
					c.Spawn("fib", func(cc *cilk.Ctx) {
						a = rec(cc, n-1)
						cc.Store(local) // write the spawned call's result
					})
					c.Call("fib", func(cc *cilk.Ctx) {
						b = rec(cc, n-2)
					})
					c.Sync()
					c.Load(local) // read the spawned result after the sync
					return a + b
				}
				got = rec(c, n)
				calls = h.Value(c)
			}
			ins.Verify = func() error {
				if want := fibValue(n); got != want {
					return fmt.Errorf("fib(%d) = %d, want %d", n, got, want)
				}
				if want := fibCalls(n); calls != want {
					return fmt.Errorf("fib call count = %d, want %d", calls, want)
				}
				return nil
			}
			return ins
		},
	}
}

func fibValue(n int) int {
	a, b := 0, 1
	for i := 0; i < n; i++ {
		a, b = b, a+b
	}
	return a
}

// fibCalls counts invocations of the recursive function.
func fibCalls(n int) int {
	if n < 2 {
		return 1
	}
	return 1 + fibCalls(n-1) + fibCalls(n-2)
}
