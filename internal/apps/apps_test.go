package apps

import (
	"testing"

	"repro/internal/cilk"
	"repro/internal/core"
	"repro/internal/mem"
	"repro/internal/peerset"
	"repro/internal/spplus"
)

// specsUnderTest cover the detector configurations of Figure 7.
var specsUnderTest = []struct {
	name string
	spec cilk.StealSpec
}{
	{"no-steals", nil},
	{"steal-all", cilk.StealAll{}},
	{"steal-all-eager", cilk.StealAll{Reduce: cilk.ReduceEager}},
}

func TestAllAppsVerifyUnderEverySchedule(t *testing.T) {
	for _, app := range All() {
		app := app
		t.Run(app.Name, func(t *testing.T) {
			for _, sc := range specsUnderTest {
				al := mem.NewAllocator()
				ins := app.Build(al, Test)
				res := cilk.Run(ins.Prog, cilk.Config{Spec: sc.spec})
				if err := ins.Verify(); err != nil {
					t.Fatalf("%s under %s: %v", app.Name, sc.name, err)
				}
				if res.Spawns == 0 {
					t.Fatalf("%s: no parallelism exercised", app.Name)
				}
				if res.Updates == 0 {
					t.Fatalf("%s: no reducer updates — every benchmark uses a reducer", app.Name)
				}
			}
		})
	}
}

func TestAppsViewReadClean(t *testing.T) {
	// The benchmarks use reducers correctly: Peer-Set must stay silent.
	for _, app := range All() {
		al := mem.NewAllocator()
		ins := app.Build(al, Test)
		d := peerset.New()
		cilk.Run(ins.Prog, cilk.Config{Hooks: d})
		if !d.Report().Empty() {
			t.Errorf("%s: view-read races reported:\n%s", app.Name, d.Report().Summary())
		}
	}
}

func TestAppsDeterminacyProfile(t *testing.T) {
	// Under SP+ with steals, the only races the benchmarks may exhibit
	// are pbfs's well-known benign write-write races on the distance
	// array; the other five are determinacy-race-free.
	for _, app := range All() {
		al := mem.NewAllocator()
		ins := app.Build(al, Test)
		d := spplus.New()
		cilk.Run(ins.Prog, cilk.Config{Spec: cilk.StealAll{}, Hooks: d})
		if err := ins.Verify(); err != nil {
			t.Fatalf("%s: %v", app.Name, err)
		}
		rep := d.Report()
		if app.Name == "pbfs" {
			continue // benign distance races expected; see TestPBFSBenignRaces
		}
		if !rep.Empty() {
			t.Errorf("%s: determinacy races reported:\n%s", app.Name, rep.Summary())
		}
	}
}

func TestPBFSBenignRaces(t *testing.T) {
	// PBFS's benign write-write race on dist[] is real and SP+ reports
	// it; every reported race must be on the dist region.
	al := mem.NewAllocator()
	ins := PBFS().Build(al, Test)
	d := spplus.New()
	cilk.Run(ins.Prog, cilk.Config{Spec: cilk.StealAll{}, Hooks: d})
	if err := ins.Verify(); err != nil {
		t.Fatal(err)
	}
	for _, r := range d.Report().Races() {
		if r.Kind != core.Determinacy {
			t.Fatalf("unexpected race kind: %v", r)
		}
		if got := al.Describe(r.Addr); got[:4] != "dist" {
			t.Fatalf("race outside dist region: %v at %s", r, got)
		}
	}
}

func TestByName(t *testing.T) {
	if _, err := ByName("pbfs"); err != nil {
		t.Fatal(err)
	}
	if _, err := ByName("nope"); err == nil {
		t.Fatal("unknown app must error")
	}
}

func TestScalesBuild(t *testing.T) {
	// Small scale builds and runs for every app (bench scale is exercised
	// by the bench harness, not unit tests).
	for _, app := range All() {
		al := mem.NewAllocator()
		ins := app.Build(al, Small)
		cilk.Run(ins.Prog, cilk.Config{})
		if err := ins.Verify(); err != nil {
			t.Fatalf("%s small: %v", app.Name, err)
		}
	}
}

func TestInstanceRerunnable(t *testing.T) {
	// Build once, run twice (the harness reruns instances across
	// configurations): verify must pass both times.
	for _, app := range All() {
		al := mem.NewAllocator()
		ins := app.Build(al, Test)
		cilk.Run(ins.Prog, cilk.Config{})
		if err := ins.Verify(); err != nil {
			t.Fatalf("%s first run: %v", app.Name, err)
		}
		cilk.Run(ins.Prog, cilk.Config{Spec: cilk.StealAll{}})
		if err := ins.Verify(); err != nil {
			t.Fatalf("%s second run: %v", app.Name, err)
		}
	}
}
