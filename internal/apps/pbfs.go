package apps

import (
	"fmt"

	"repro/internal/cilk"
	"repro/internal/mem"
	"repro/internal/reducer"
	"repro/internal/workload"
)

// PBFS is the Leiserson–Schardl work-efficient parallel breadth-first
// search: the frontier lives in a pennant-bag reducer, each layer is
// walked in parallel (one task per pennant, recursing down pennant
// subtrees), and discovered vertices are inserted into the next layer's
// bag through the reducer. Writes to the distance array are the
// benchmark's instrumented accesses; two same-layer vertices may both
// discover w and both write dist[w] — the classic benign write-write race
// PBFS is famous for, which also makes the bag admit duplicates that the
// next layer re-checks.
func PBFS() App {
	return App{
		Name: "pbfs",
		Desc: "Parallel breadth-first search",
		Build: func(al *mem.Allocator, scale Scale) *Instance {
			var nv, ne int
			switch scale {
			case Test:
				nv, ne = 300, 900
			case Small:
				nv, ne = 3_000, 12_000
			default:
				// The paper's input size exactly: |V| = 0.3M, |E| = 1.9M.
				nv, ne = 300_000, 1_900_000
			}
			g := workload.RandomGraph(77, nv, ne)
			distRegion := al.Alloc("dist", nv)
			dist := make([]int32, nv)
			ins := &Instance{InputDesc: fmt.Sprintf("|V| = %d, |E| = %d", nv, ne)}
			ins.Prog = func(c *cilk.Ctx) {
				for i := range dist {
					dist[i] = -1
				}
				dist[0] = 0
				cur := reducer.NewBag[int32]()
				cur.Insert(0)
				for d := int32(0); !cur.Empty(); d++ {
					next := reducer.New[*reducer.Bag[int32]](
						c, "next-layer", reducer.BagMonoid[int32](), reducer.NewBag[int32]())
					processLayer(c, g, cur, d, dist, distRegion, next)
					cur = next.Value(c)
				}
			}
			ins.Verify = func() error {
				want := workload.BFSLevels(g, 0)
				for v := range dist {
					if dist[v] != want[v] {
						return fmt.Errorf("dist[%d] = %d, want %d", v, dist[v], want[v])
					}
				}
				return nil
			}
			return ins
		},
	}
}

// processLayer walks every pennant of the layer bag in parallel, relaxing
// the out-edges of each vertex at distance d.
func processLayer(c *cilk.Ctx, g *workload.Graph, layer *reducer.Bag[int32], d int32,
	dist []int32, distRegion mem.Region, next reducer.Handle[*reducer.Bag[int32]]) {
	pennants := layer.Pennants()
	for _, pn := range pennants {
		pn := pn
		c.Spawn("pennant", func(cc *cilk.Ctx) {
			walkPennant(cc, g, pn, 0, d, dist, distRegion, next)
		})
	}
	c.Sync()
}

// walkPennant spawns down the pennant tree for spawnDepth levels, then
// descends serially — the grain control of the PBFS paper's BAG-WALK.
func walkPennant(c *cilk.Ctx, g *workload.Graph, pn *reducer.Pennant[int32], depth int, d int32,
	dist []int32, distRegion mem.Region, next reducer.Handle[*reducer.Bag[int32]]) {
	const spawnDepth = 6
	relax(c, g, pn.Element(), d, dist, distRegion, next)
	l, r := pn.Children()
	if depth < spawnDepth {
		if l != nil {
			c.Spawn("pennant", func(cc *cilk.Ctx) {
				walkPennant(cc, g, l, depth+1, d, dist, distRegion, next)
			})
		}
		if r != nil {
			c.Spawn("pennant", func(cc *cilk.Ctx) {
				walkPennant(cc, g, r, depth+1, d, dist, distRegion, next)
			})
		}
		c.Sync()
		return
	}
	if l != nil {
		walkSerial(c, g, l, d, dist, distRegion, next)
	}
	if r != nil {
		walkSerial(c, g, r, d, dist, distRegion, next)
	}
}

func walkSerial(c *cilk.Ctx, g *workload.Graph, pn *reducer.Pennant[int32], d int32,
	dist []int32, distRegion mem.Region, next reducer.Handle[*reducer.Bag[int32]]) {
	relax(c, g, pn.Element(), d, dist, distRegion, next)
	l, r := pn.Children()
	if l != nil {
		walkSerial(c, g, l, d, dist, distRegion, next)
	}
	if r != nil {
		walkSerial(c, g, r, d, dist, distRegion, next)
	}
}

// relax explores v's neighbours: an undiscovered w gets distance d+1 and
// joins the next layer's bag.
func relax(c *cilk.Ctx, g *workload.Graph, v int32, d int32,
	dist []int32, distRegion mem.Region, next reducer.Handle[*reducer.Bag[int32]]) {
	if dist[v] != d {
		return // duplicate insertion from the benign race; already done
	}
	for _, w := range g.Neighbors(int(v)) {
		c.Load(distRegion.At(int(w)))
		if dist[w] < 0 {
			c.Store(distRegion.At(int(w)))
			dist[w] = d + 1
			next.Update(c, func(_ *cilk.Ctx, b *reducer.Bag[int32]) *reducer.Bag[int32] {
				b.Insert(w)
				return b
			})
		}
	}
}
