package apps

import (
	"fmt"

	"repro/internal/cilk"
	"repro/internal/mem"
	"repro/internal/reducer"
	"repro/internal/workload"
)

func randomKnapsackFor(scale Scale, n int) *workload.KnapsackInstance {
	return workload.RandomKnapsack(101+int64(scale), n)
}

func solveDP(inst *workload.KnapsackInstance) int {
	return workload.SolveKnapsackDP(inst)
}

// bestSolution is the user-defined reducer view the knapsack benchmark
// maintains: the best value found plus the decision vector achieving it —
// the paper's "user-defined struct" reducer.
type bestSolution struct {
	Set   bool
	Value int
	Take  uint64 // bitmask of chosen items
}

// bestMonoid keeps the better solution; ties keep the serially-earlier
// one, so the chosen decision vector is deterministic.
func bestMonoid() cilk.Monoid {
	return cilk.MonoidFuncs(
		func(*cilk.Ctx) any { return bestSolution{} },
		func(_ *cilk.Ctx, l, r any) any {
			lv, rv := l.(bestSolution), r.(bestSolution)
			switch {
			case !rv.Set:
				return lv
			case !lv.Set:
				return rv
			case rv.Value > lv.Value:
				return rv
			default:
				return lv
			}
		},
	)
}

// Knapsack is the recursive branch-and-bound knapsack solver in the style
// of Frigo's Cilk++ knapsack challenge entry, with the best solution held
// in a user-defined struct reducer. Pruning consults an uninstrumented
// shared lower bound — like the original's benign racy global, and like
// ferret's uninstrumented library code in §8, it is outside the tool's
// view by choice. Like fib it does little work per spawn, which is why its
// Figure 7 overheads are second-worst (56.41× / 66.79×).
func Knapsack() App {
	return App{
		Name: "knapsack",
		Desc: "Recursive knapsack",
		Build: func(al *mem.Allocator, scale Scale) *Instance {
			n := map[Scale]int{Test: 10, Small: 14, Bench: 20}[scale]
			inst := randomKnapsackFor(scale, n)
			items := al.Alloc("items", n)
			// Suffix sums of value bound the best completion from item i.
			suffix := make([]int, n+1)
			for i := n - 1; i >= 0; i-- {
				suffix[i] = suffix[i+1] + inst.Items[i].Value
			}
			var got bestSolution
			ins := &Instance{InputDesc: fmt.Sprint(n)}
			ins.Prog = func(c *cilk.Ctx) {
				h := reducer.New[bestSolution](c, "best", bestMonoid(), bestSolution{})
				lower := 0 // uninstrumented benign pruning bound
				var rec func(c *cilk.Ctx, i, cap, val int, take uint64)
				rec = func(c *cilk.Ctx, i, cap, val int, take uint64) {
					if i == len(inst.Items) {
						if val > lower {
							lower = val
						}
						h.Update(c, func(_ *cilk.Ctx, b bestSolution) bestSolution {
							if !b.Set || val > b.Value {
								return bestSolution{Set: true, Value: val, Take: take}
							}
							return b
						})
						return
					}
					if val+suffix[i] <= lower {
						return // cannot beat the bound
					}
					c.Load(items.At(i)) // read item i's weight/value
					it := inst.Items[i]
					if it.Weight <= cap {
						c.Spawn("take", func(cc *cilk.Ctx) {
							rec(cc, i+1, cap-it.Weight, val+it.Value, take|1<<i)
						})
					}
					c.Call("skip", func(cc *cilk.Ctx) {
						rec(cc, i+1, cap, val, take)
					})
					c.Sync()
				}
				rec(c, 0, inst.Capacity, 0, 0)
				got = h.Value(c)
			}
			ins.Verify = func() error {
				want := solveDP(inst)
				if !got.Set || got.Value != want {
					return fmt.Errorf("knapsack best = %+v, want value %d", got, want)
				}
				// The decision vector must actually achieve the value.
				val, wt := 0, 0
				for i, it := range inst.Items {
					if got.Take&(1<<i) != 0 {
						val += it.Value
						wt += it.Weight
					}
				}
				if val != got.Value || wt > inst.Capacity {
					return fmt.Errorf("decision vector inconsistent: val=%d wt=%d cap=%d", val, wt, inst.Capacity)
				}
				return nil
			}
			return ins
		},
	}
}
