package apps

import (
	"bytes"
	"fmt"
	"sort"

	"repro/internal/cilk"
	"repro/internal/mem"
	"repro/internal/reducer"
	"repro/internal/workload"
)

// ferretTopK is how many nearest neighbours each query reports.
const ferretTopK = 4

// Ferret is the image-similarity-search benchmark derived from PARSEC's
// ferret, restructured to Cilk linguistics with a reducer_ostream for the
// result stream. Queries are processed in parallel; each scans the feature
// database for its nearest neighbours and prints its result line through
// the ostream reducer. As in the paper's setup (§8), only the main ferret
// code is instrumented — one read per database vector per scan — not the
// innards of the distance kernel, which is why ferret's Figure 7 overheads
// are near 1: only a small fraction of the computation's memory accesses
// are visible to the tool.
func Ferret() App {
	return App{
		Name: "ferret",
		Desc: "Image similarity search",
		Build: func(al *mem.Allocator, scale Scale) *Instance {
			var n, q, dim int
			switch scale {
			case Test:
				n, q, dim = 60, 6, 8
			case Small:
				n, q, dim = 400, 16, 16
			default:
				n, q, dim = 4_000, 64, 32
			}
			db := workload.RandomImageDB(91, n, q, dim)
			dbRegion := al.Alloc("feature-db", n)
			var got []byte
			ins := &Instance{InputDesc: fmt.Sprintf("%d images, %d queries, dim %d", n, q, dim)}
			ins.Prog = func(c *cilk.Ctx) {
				h := reducer.New[*reducer.Ostream](c, "results", reducer.OstreamMonoid(), &reducer.Ostream{})
				c.ParForGrain("queries", q, 1, func(cc *cilk.Ctx, qi int) {
					best := scanQuery(cc, db, dbRegion, qi)
					h.Update(cc, func(_ *cilk.Ctx, o *reducer.Ostream) *reducer.Ostream {
						writeResult(o, qi, best)
						return o
					})
				})
				got = h.Value(c).Bytes()
			}
			ins.Verify = func() error {
				want := &reducer.Ostream{}
				for qi := range db.Queries {
					writeResult(want, qi, serialScan(db, qi))
				}
				if !bytes.Equal(got, want.Bytes()) {
					return fmt.Errorf("ferret results differ:\n got %q\nwant %q", got, want.Bytes())
				}
				return nil
			}
			return ins
		},
	}
}

type neighbour struct {
	id   int
	dist float32
}

// scanQuery finds the query's top-k neighbours, loading each database
// vector once (the instrumented granularity).
func scanQuery(c *cilk.Ctx, db *workload.ImageDB, region mem.Region, qi int) []neighbour {
	qv := db.Queries[qi]
	var best []neighbour
	for j, v := range db.Vectors {
		c.Load(region.At(j))
		d := l2(qv, v)
		best = insertTopK(best, neighbour{id: j, dist: d})
	}
	return best
}

func serialScan(db *workload.ImageDB, qi int) []neighbour {
	qv := db.Queries[qi]
	var best []neighbour
	for j, v := range db.Vectors {
		best = insertTopK(best, neighbour{id: j, dist: l2(qv, v)})
	}
	return best
}

func l2(a, b []float32) float32 {
	var s float32
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return s
}

// insertTopK keeps the k best neighbours, ties broken by lower id for
// determinism.
func insertTopK(best []neighbour, n neighbour) []neighbour {
	best = append(best, n)
	sort.Slice(best, func(i, j int) bool {
		if best[i].dist != best[j].dist {
			return best[i].dist < best[j].dist
		}
		return best[i].id < best[j].id
	})
	if len(best) > ferretTopK {
		best = best[:ferretTopK]
	}
	return best
}

func writeResult(o *reducer.Ostream, qi int, best []neighbour) {
	o.Printf("query %d:", qi)
	for _, n := range best {
		o.Printf(" %d(%.4f)", n.id, n.dist)
	}
	o.Printf("\n")
}
