package apps

import (
	"bytes"
	"testing"

	"repro/internal/workload"
)

// FuzzDedupDecode: the archive decoder must never panic on corrupt input —
// it returns an error instead — and must keep round-tripping valid
// archives.
func FuzzDedupDecode(f *testing.F) {
	data := bytes.Repeat([]byte("abcdefgh"), 32)
	ends := workload.ChunkBoundaries(data, 32, 64, 128)
	arch := serialDedup(data, ends)
	f.Add(arch, []byte(data))
	f.Add([]byte("R 1 0\n"), []byte(data))
	f.Add([]byte("C 0 "), []byte("x"))
	f.Add([]byte{}, []byte{})
	f.Add([]byte("X 0 0\n"), []byte("abcdefgh"))
	f.Fuzz(func(t *testing.T, arch, data []byte) {
		if len(data) > 1<<16 {
			return
		}
		ends := workload.ChunkBoundaries(data, 16, 32, 64)
		out, err := decodeArchive(arch, ends)
		if err == nil && len(out) != len(data) {
			t.Fatalf("decode returned %d bytes, want %d", len(out), len(data))
		}
	})
}

// FuzzDedupRoundTrip: encode-then-decode is the identity for any input
// stream under its own chunk boundaries.
func FuzzDedupRoundTrip(f *testing.F) {
	f.Add([]byte("hello world hello world!!"))
	f.Add([]byte{0, 0, 0, 0, 1, 2, 3, 4})
	f.Add(bytes.Repeat([]byte{7}, 3000))
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 1<<16 {
			return
		}
		ends := workload.ChunkBoundaries(data, 16, 32, 128)
		arch := serialDedup(data, ends)
		back, err := decodeArchive(arch, ends)
		if err != nil {
			t.Fatalf("decode of own archive failed: %v", err)
		}
		if !bytes.Equal(back, data) {
			t.Fatal("round trip not identity")
		}
	})
}
