package obs

import (
	"encoding/json"
	"fmt"
	"time"
)

// SpanDoc is the serializable form of a finished span tree: the
// distributed-trace identity it belongs to, the wall-clock anchor of its
// monotonic timestamps, and the spans themselves. raderd persists one
// SpanDoc next to each verdict; the rader client fetches it and merges
// the server's spans into its own profile, aligning clocks via T0.
type SpanDoc struct {
	// Traceparent is the W3C rendering of the trace's SpanContext, ""
	// when the trace had no distributed identity.
	Traceparent string `json:"traceparent,omitempty"`
	// T0UnixNano anchors the spans' monotonic offsets in wall time.
	T0UnixNano int64 `json:"t0UnixNano"`
	// Process names the recording process (e.g. "raderd").
	Process string     `json:"process,omitempty"`
	Spans   []SpanJSON `json:"spans"`
}

// SpanJSON is one SpanRecord with JSON-stable fields (nanosecond offsets,
// args as an object).
type SpanJSON struct {
	Name    string         `json:"name"`
	TID     int            `json:"tid"`
	StartNS int64          `json:"startNs"`
	DurNS   int64          `json:"durNs"`
	Args    map[string]any `json:"args,omitempty"`
}

// EncodeSpans renders the trace's finished spans (in deterministic
// Spans() order) as a SpanDoc. A nil trace encodes to an empty document.
func (t *Trace) EncodeSpans(process string) ([]byte, error) {
	doc := SpanDoc{Process: process}
	if t != nil {
		doc.Traceparent = t.Context().Traceparent()
		doc.T0UnixNano = t.T0().UnixNano()
		spans := t.Spans()
		doc.Spans = make([]SpanJSON, len(spans))
		for i, s := range spans {
			doc.Spans[i] = SpanJSON{
				Name: s.Name, TID: s.TID,
				StartNS: s.Start.Nanoseconds(), DurNS: s.Dur.Nanoseconds(),
				Args: argsMap(s.Args),
			}
		}
	}
	return json.Marshal(doc)
}

// DecodeSpans parses an encoded SpanDoc.
func DecodeSpans(data []byte) (*SpanDoc, error) {
	var doc SpanDoc
	if err := json.Unmarshal(data, &doc); err != nil {
		return nil, fmt.Errorf("obs: decoding span document: %w", err)
	}
	return &doc, nil
}

// Context returns the document's distributed identity, ok=false when the
// traceparent is absent or malformed.
func (d *SpanDoc) Context() (SpanContext, bool) {
	if d == nil || d.Traceparent == "" {
		return SpanContext{}, false
	}
	c, err := ParseTraceparent(d.Traceparent)
	return c, err == nil
}

// Records converts the document back into SpanRecords (args in sorted
// key order for determinism).
func (d *SpanDoc) Records() []SpanRecord {
	if d == nil {
		return nil
	}
	out := make([]SpanRecord, len(d.Spans))
	for i, s := range d.Spans {
		rec := SpanRecord{
			Name: s.Name, TID: s.TID,
			Start: time.Duration(s.StartNS), Dur: time.Duration(s.DurNS),
		}
		for _, k := range sortedKeys(s.Args) {
			rec.Args = append(rec.Args, Arg{Key: k, Value: s.Args[k]})
		}
		out[i] = rec
	}
	return out
}

func argsMap(args []Arg) map[string]any {
	if len(args) == 0 {
		return nil
	}
	m := make(map[string]any, len(args))
	for _, a := range args {
		m[a.Key] = a.Value
	}
	return m
}

func sortedKeys(m map[string]any) []string {
	if len(m) == 0 {
		return nil
	}
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	for i := range keys {
		for j := i + 1; j < len(keys); j++ {
			if keys[j] < keys[i] {
				keys[i], keys[j] = keys[j], keys[i]
			}
		}
	}
	return keys
}
