package obs

import "sync"

// ProgressSnapshot is one monotone observation of a long-running job:
// every field only grows (Publish merges per-field maxima), so readers
// streaming successive snapshots can assert monotonicity and resume after
// a dropped connection without seeing counters move backwards.
type ProgressSnapshot struct {
	UnitsDone     int64 `json:"unitsDone"`
	UnitsTotal    int64 `json:"unitsTotal"`
	EventsSkipped int64 `json:"eventsSkipped"`
	PagesCopied   int64 `json:"pagesCopied"`
	Races         int64 `json:"races"`
}

// merge folds s2 into s per-field-max.
func (s *ProgressSnapshot) merge(s2 ProgressSnapshot) bool {
	changed := false
	maxInto := func(dst *int64, v int64) {
		if v > *dst {
			*dst = v
			changed = true
		}
	}
	maxInto(&s.UnitsDone, s2.UnitsDone)
	maxInto(&s.UnitsTotal, s2.UnitsTotal)
	maxInto(&s.EventsSkipped, s2.EventsSkipped)
	maxInto(&s.PagesCopied, s2.PagesCopied)
	maxInto(&s.Races, s2.Races)
	return changed
}

// Progress is a monotone progress cell with change broadcast: writers
// Publish snapshots (merged per-field-max, so late or out-of-order
// publishes can't regress), readers Load the current state plus a channel
// that closes on the next change. Nil-safe like the rest of obs.
type Progress struct {
	mu   sync.Mutex
	cur  ProgressSnapshot
	ver  uint64
	wake chan struct{}
}

// NewProgress returns an empty progress cell.
func NewProgress() *Progress { return &Progress{wake: make(chan struct{})} }

// Publish merges s into the current snapshot (per-field max) and, if
// anything grew, bumps the version and wakes waiters. No-op on nil.
func (p *Progress) Publish(s ProgressSnapshot) {
	if p == nil {
		return
	}
	p.mu.Lock()
	if p.cur.merge(s) {
		p.bumpLocked()
	}
	p.mu.Unlock()
}

// Bump wakes waiters without changing counters — used to signal terminal
// state transitions (done/failed) that may not move any counter. No-op on
// nil.
func (p *Progress) Bump() {
	if p == nil {
		return
	}
	p.mu.Lock()
	p.bumpLocked()
	p.mu.Unlock()
}

func (p *Progress) bumpLocked() {
	p.ver++
	close(p.wake)
	p.wake = make(chan struct{})
}

// Load returns the current snapshot, its version, and a channel that
// closes when the version next changes. On a nil cell it returns a zero
// snapshot and a nil channel (which blocks forever — callers pair it with
// their own timeout).
func (p *Progress) Load() (ProgressSnapshot, uint64, <-chan struct{}) {
	if p == nil {
		return ProgressSnapshot{}, 0, nil
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.cur, p.ver, p.wake
}
