package obs

import (
	"bytes"
	"encoding/json"
	"sync"
	"testing"
)

// TestTraceConcurrentWriteChrome is the -race stress for concurrent Trace
// use: many goroutines spawn spans on distinct lanes while WriteChrome
// (and EncodeSpans) snapshot mid-flight. The contract: exports observe
// only finished spans — an open span either renders (if it Ended before
// the snapshot) or is skipped entirely, never torn — and every export is
// valid JSON whose events are well-formed complete events.
func TestTraceConcurrentWriteChrome(t *testing.T) {
	tr := NewTrace()
	tr.SetContext(NewSpanContext())

	const lanes = 16
	const spansPerLane = 200

	var wg sync.WaitGroup
	stop := make(chan struct{})

	for lane := 1; lane <= lanes; lane++ {
		wg.Add(1)
		go func(lane int) {
			defer wg.Done()
			for i := 0; i < spansPerLane; i++ {
				s := tr.StartTID(lane, "unit").Arg("i", i)
				s.End()
			}
		}(lane)
	}

	// Snapshotters race against the span producers.
	var snapWG sync.WaitGroup
	for g := 0; g < 4; g++ {
		snapWG.Add(1)
		go func() {
			defer snapWG.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				var buf bytes.Buffer
				if err := tr.WriteChrome(&buf); err != nil {
					t.Errorf("WriteChrome mid-flight: %v", err)
					return
				}
				var doc struct {
					TraceEvents []struct {
						Name string  `json:"name"`
						Ph   string  `json:"ph"`
						TID  int     `json:"tid"`
						Dur  float64 `json:"dur"`
					} `json:"traceEvents"`
				}
				if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
					t.Errorf("mid-flight export not JSON: %v", err)
					return
				}
				for _, ev := range doc.TraceEvents {
					if ev.Ph != "X" || ev.Name != "unit" || ev.TID < 1 || ev.TID > lanes || ev.Dur < 0 {
						t.Errorf("torn event in mid-flight export: %+v", ev)
						return
					}
				}
				if _, err := tr.EncodeSpans("stress"); err != nil {
					t.Errorf("EncodeSpans mid-flight: %v", err)
					return
				}
			}
		}()
	}

	wg.Wait()
	close(stop)
	snapWG.Wait()

	if got := len(tr.Spans()); got != lanes*spansPerLane {
		t.Fatalf("finished spans = %d, want %d", got, lanes*spansPerLane)
	}
}
