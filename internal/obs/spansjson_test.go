package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"
)

func TestSpanDocRoundTrip(t *testing.T) {
	tr := NewTrace()
	tr.SetContext(NewSpanContext())
	s := tr.Start("outer").Arg("n", 7).Arg("mode", "sweep")
	tr.StartTID(2, "worker").End()
	s.End()

	data, err := tr.EncodeSpans("raderd")
	if err != nil {
		t.Fatalf("EncodeSpans: %v", err)
	}
	doc, err := DecodeSpans(data)
	if err != nil {
		t.Fatalf("DecodeSpans: %v", err)
	}
	if doc.Process != "raderd" {
		t.Fatalf("Process = %q", doc.Process)
	}
	ctx, ok := doc.Context()
	if !ok || ctx != tr.Context() {
		t.Fatalf("context did not survive: ok=%v ctx=%+v", ok, ctx)
	}
	if doc.T0UnixNano != tr.T0().UnixNano() {
		t.Fatalf("T0 mismatch: %d vs %d", doc.T0UnixNano, tr.T0().UnixNano())
	}
	recs := doc.Records()
	if len(recs) != 2 {
		t.Fatalf("got %d records, want 2", len(recs))
	}
	want := tr.Spans()
	for i, rec := range recs {
		if rec.Name != want[i].Name || rec.TID != want[i].TID ||
			rec.Start != want[i].Start || rec.Dur != want[i].Dur {
			t.Errorf("record %d: got %+v want %+v", i, rec, want[i])
		}
	}
	// Args survive (JSON numbers come back as float64 — fine for display).
	var gotArgs map[string]any
	for _, rec := range recs {
		if rec.Name == "outer" {
			gotArgs = map[string]any{}
			for _, a := range rec.Args {
				gotArgs[a.Key] = a.Value
			}
		}
	}
	if gotArgs["mode"] != "sweep" || gotArgs["n"] != float64(7) {
		t.Fatalf("outer args wrong: %+v", gotArgs)
	}
}

func TestSpanDocNilTrace(t *testing.T) {
	var tr *Trace
	data, err := tr.EncodeSpans("x")
	if err != nil {
		t.Fatalf("EncodeSpans(nil): %v", err)
	}
	doc, err := DecodeSpans(data)
	if err != nil {
		t.Fatalf("DecodeSpans: %v", err)
	}
	if len(doc.Spans) != 0 || doc.Traceparent != "" {
		t.Fatalf("nil trace encoded to %+v", doc)
	}
	if _, ok := doc.Context(); ok {
		t.Fatal("empty doc claims a context")
	}
	var nilDoc *SpanDoc
	if nilDoc.Records() != nil {
		t.Fatal("nil doc Records not nil")
	}
	if _, ok := nilDoc.Context(); ok {
		t.Fatal("nil doc claims a context")
	}
}

func TestDecodeSpansRejectsGarbage(t *testing.T) {
	if _, err := DecodeSpans([]byte("not json")); err == nil {
		t.Fatal("garbage decoded")
	}
}

func TestWriteChromeProcesses(t *testing.T) {
	client := NewTrace()
	client.Start("request").End()
	server := NewTrace()
	server.StartTID(1, "run").End()

	var buf bytes.Buffer
	err := WriteChromeProcesses(&buf, []Process{
		{PID: 1, Name: "rader (client)", Spans: client.Spans()},
		{PID: 2, Name: "raderd (server)", Offset: 5 * time.Millisecond,
			Spans:  server.Spans(),
			Labels: map[string]string{"traceparent": "00-abc"}},
	})
	if err != nil {
		t.Fatalf("WriteChromeProcesses: %v", err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			PID  int            `json:"pid"`
			TS   float64        `json:"ts"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("output not JSON: %v", err)
	}
	var meta, complete int
	var sawServerSpan bool
	for _, ev := range doc.TraceEvents {
		switch ev.Ph {
		case "M":
			meta++
			if ev.Name == "process_name" && ev.PID == 2 {
				if ev.Args["name"] != "raderd (server)" {
					t.Errorf("server process name = %v", ev.Args["name"])
				}
			}
		case "X":
			complete++
			if ev.PID == 2 {
				sawServerSpan = true
				if ev.TS < 5000 { // 5ms offset in microseconds
					t.Errorf("server span not offset: ts=%v", ev.TS)
				}
			}
		default:
			t.Errorf("unexpected phase %q", ev.Ph)
		}
	}
	if meta != 3 { // 2 process_name + 1 process_labels
		t.Errorf("metadata events = %d, want 3", meta)
	}
	if complete != 2 || !sawServerSpan {
		t.Errorf("complete events = %d (server seen: %v), want 2", complete, sawServerSpan)
	}
}

func TestWriteChromeProcessesClampsNegativeStart(t *testing.T) {
	tr := NewTrace()
	tr.Start("early").End()
	var buf bytes.Buffer
	if err := WriteChromeProcesses(&buf, []Process{
		{PID: 1, Name: "p", Offset: -time.Hour, Spans: tr.Spans()},
	}); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), `"ts": -`) {
		t.Fatalf("negative ts leaked:\n%s", buf.String())
	}
}
