package obs

import (
	"strings"
	"testing"
)

func TestEscapeLabelValue(t *testing.T) {
	cases := []struct{ in, want string }{
		{"plain", "plain"},
		{`back\slash`, `back\\slash`},
		{`quo"te`, `quo\"te`},
		{"new\nline", `new\nline`},
		{"all\\\"\n", `all\\\"\n`},
		// Bytes the format does NOT escape must pass through untouched —
		// %q would mangle these into escapes strict parsers reject.
		{"tab\there", "tab\there"},
		{"útf8-ßtring", "útf8-ßtring"},
		{"", ""},
	}
	for _, tc := range cases {
		if got := EscapeLabelValue(tc.in); got != tc.want {
			t.Errorf("EscapeLabelValue(%q) = %q, want %q", tc.in, got, tc.want)
		}
	}
}

func TestLabelRendersEscapedPair(t *testing.T) {
	if got := Label("prog", `evil"\`+"\n"); got != `prog="evil\"\\\n"` {
		t.Fatalf("Label = %q", got)
	}
}

// TestWritePrometheusEscapesHostileLabels pins the satellite fix: a label
// value carrying a quote, backslash and newline (e.g. a hostile program
// name) must render as a single well-formed sample line.
func TestWritePrometheusEscapesHostileLabels(t *testing.T) {
	r := NewRegistry()
	hostile := "bad\"name\\with\nnewline"
	r.Counter("test_total", "help", Label("prog", hostile)).Add(3)

	var b strings.Builder
	r.WritePrometheus(&b)
	out := b.String()

	wantLine := `test_total{prog="bad\"name\\with\nnewline"} 3`
	if !strings.Contains(out, wantLine+"\n") {
		t.Fatalf("exposition missing escaped sample line %q:\n%s", wantLine, out)
	}
	// Every non-comment line must be NAME{...} VALUE or NAME VALUE on a
	// single physical line — the raw newline must not have split the sample.
	for _, line := range strings.Split(strings.TrimRight(out, "\n"), "\n") {
		if strings.HasPrefix(line, "#") {
			continue
		}
		if !strings.HasPrefix(line, "test_total") {
			t.Fatalf("stray exposition line %q (hostile label leaked a newline):\n%s", line, out)
		}
	}
}

func TestWritePrometheusEscapesHelp(t *testing.T) {
	r := NewRegistry()
	r.Counter("h_total", "line one\nline two \\ backslash", "").Inc()
	var b strings.Builder
	r.WritePrometheus(&b)
	want := `# HELP h_total line one\nline two \\ backslash`
	if !strings.Contains(b.String(), want+"\n") {
		t.Fatalf("help not escaped:\n%s", b.String())
	}
}
