package obs

import (
	"bytes"
	"encoding/json"
	"sync"
	"testing"
	"time"
)

func TestSpanNesting(t *testing.T) {
	tr := NewTrace()
	outer := tr.Start("outer")
	inner := tr.Start("inner").Arg("n", 3)
	time.Sleep(time.Millisecond)
	inner.End()
	outer.End()

	spans := tr.Spans()
	if len(spans) != 2 {
		t.Fatalf("got %d spans, want 2", len(spans))
	}
	// Deterministic order: outer started first.
	if spans[0].Name != "outer" || spans[1].Name != "inner" {
		t.Fatalf("span order %q, %q", spans[0].Name, spans[1].Name)
	}
	o, i := spans[0], spans[1]
	if i.Start < o.Start || i.Start+i.Dur > o.Start+o.Dur {
		t.Fatalf("inner [%v,%v] not contained in outer [%v,%v]",
			i.Start, i.Start+i.Dur, o.Start, o.Start+o.Dur)
	}
	if i.Dur < time.Millisecond {
		t.Fatalf("inner duration %v under the slept millisecond", i.Dur)
	}
	if len(i.Args) != 1 || i.Args[0].Key != "n" {
		t.Fatalf("inner args %v", i.Args)
	}
}

func TestTraceConcurrentLanes(t *testing.T) {
	tr := NewTrace()
	var wg sync.WaitGroup
	for w := 1; w <= 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				tr.StartTID(w, "work").End()
			}
		}(w)
	}
	wg.Wait()
	if got := len(tr.Spans()); got != 200 {
		t.Fatalf("got %d spans, want 200", got)
	}
}

// TestNilTraceAllocs pins the nil-sink fast path: instrumented code calls
// Start/Arg/End unconditionally, and with no trace attached the whole
// chain must not allocate.
func TestNilTraceAllocs(t *testing.T) {
	var tr *Trace
	allocs := testing.AllocsPerRun(100, func() {
		sp := tr.StartTID(1, "hot")
		sp.Arg("k", 1)
		sp.End()
		tr.Emit(SpanRecord{})
		_ = tr.Spans()
	})
	if allocs != 0 {
		t.Fatalf("nil-trace span path allocates %.2f/op, want 0", allocs)
	}
}

func TestWriteChromeParses(t *testing.T) {
	tr := NewTrace()
	sp := tr.Start("replay").Arg("events", 123).Arg("bytes", 456)
	tr.Start("detector:sp+").End()
	sp.End()

	var buf bytes.Buffer
	if err := tr.WriteChrome(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			TS   float64        `json:"ts"`
			Dur  float64        `json:"dur"`
			PID  int            `json:"pid"`
			TID  int            `json:"tid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("chrome trace is not valid JSON: %v\n%s", err, buf.String())
	}
	if doc.DisplayTimeUnit != "ms" {
		t.Fatalf("displayTimeUnit %q", doc.DisplayTimeUnit)
	}
	if len(doc.TraceEvents) != 2 {
		t.Fatalf("got %d events, want 2", len(doc.TraceEvents))
	}
	byName := map[string]int{}
	for i, ev := range doc.TraceEvents {
		byName[ev.Name] = i
		if ev.Ph != "X" || ev.PID != 1 || ev.TS < 0 || ev.Dur < 0 {
			t.Fatalf("bad event %+v", ev)
		}
	}
	rp := doc.TraceEvents[byName["replay"]]
	if rp.Args["events"] != float64(123) || rp.Args["bytes"] != float64(456) {
		t.Fatalf("replay args %v", rp.Args)
	}
}

// WriteChrome on a nil trace emits an empty, still-valid document.
func TestWriteChromeNil(t *testing.T) {
	var tr *Trace
	var buf bytes.Buffer
	if err := tr.WriteChrome(&buf); err != nil {
		t.Fatal(err)
	}
	var doc map[string]any
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
}
