package obs

// EventCounts is the per-event-class account a detector keeps while it
// consumes the cilk hook stream — the concrete data behind the paper's
// Figure 7/8 "where does instrumentation time go" breakdown. Fields are
// plain integers, not atomics: a detector is driven by exactly one serial
// event stream, so increments are single-threaded and cost one add on the
// hot path. Classes a detector does not observe (Peer-Set ignores memory
// traffic entirely) simply stay zero.
type EventCounts struct {
	FrameEnters    uint64 `json:"frameEnters,omitempty"`
	FrameReturns   uint64 `json:"frameReturns,omitempty"`
	Syncs          uint64 `json:"syncs,omitempty"`
	Steals         uint64 `json:"steals,omitempty"`
	Reduces        uint64 `json:"reduces,omitempty"`
	ViewAwares     uint64 `json:"viewAwares,omitempty"`
	ReducerCreates uint64 `json:"reducerCreates,omitempty"`
	ReducerReads   uint64 `json:"reducerReads,omitempty"`
	Loads          uint64 `json:"loads,omitempty"`
	Stores         uint64 `json:"stores,omitempty"`

	// ShadowLookups counts reads of the reader/writer shadow spaces (or
	// the reducer→reader map for Peer-Set) — the per-access cost class.
	ShadowLookups uint64 `json:"shadowLookups,omitempty"`
	// BagOps counts disjoint-set bag insertions and unions — the
	// amortized-α cost class of Theorems 1 and 5.
	BagOps uint64 `json:"bagOps,omitempty"`
}

// Total sums the event classes (bookkeeping classes excluded).
func (c EventCounts) Total() uint64 {
	return c.FrameEnters + c.FrameReturns + c.Syncs + c.Steals + c.Reduces +
		c.ViewAwares + c.ReducerCreates + c.ReducerReads + c.Loads + c.Stores
}

// Args renders the non-zero classes as span annotations.
func (c EventCounts) Args() []Arg {
	pairs := []struct {
		k string
		v uint64
	}{
		{"frameEnters", c.FrameEnters}, {"frameReturns", c.FrameReturns},
		{"syncs", c.Syncs}, {"steals", c.Steals}, {"reduces", c.Reduces},
		{"viewAwares", c.ViewAwares}, {"reducerCreates", c.ReducerCreates},
		{"reducerReads", c.ReducerReads}, {"loads", c.Loads}, {"stores", c.Stores},
		{"shadowLookups", c.ShadowLookups}, {"bagOps", c.BagOps},
	}
	out := make([]Arg, 0, len(pairs))
	for _, p := range pairs {
		if p.v != 0 {
			out = append(out, Arg{Key: p.k, Value: p.v})
		}
	}
	return out
}
