package obs

import (
	"crypto/rand"
	"encoding/hex"
	"fmt"
)

// TraceparentHeader is the W3C Trace Context header carrying a
// SpanContext across process boundaries. The rader remote client injects
// it on every request (each retry attempt and each resumable-upload chunk
// gets a fresh child span ID under the same trace ID); raderd extracts it
// and parents the server-side span tree under the remote context, so one
// trace ID names the whole cross-process story.
const TraceparentHeader = "Traceparent"

// SpanContext is the serializable identity of a trace position: a
// 16-byte trace ID shared by every span of one distributed trace, and an
// 8-byte span ID naming the position a child hangs under. The zero value
// is invalid (the W3C format reserves all-zero IDs as absent).
type SpanContext struct {
	TraceID [16]byte
	SpanID  [8]byte
}

// NewSpanContext mints a fresh root context with random trace and span
// IDs.
func NewSpanContext() SpanContext {
	var c SpanContext
	_, _ = rand.Read(c.TraceID[:])
	_, _ = rand.Read(c.SpanID[:])
	// rand.Read cannot fail on supported platforms, but an all-zero ID
	// would read as "absent" on the wire — force validity regardless.
	if c.TraceID == ([16]byte{}) {
		c.TraceID[0] = 1
	}
	if c.SpanID == ([8]byte{}) {
		c.SpanID[0] = 1
	}
	return c
}

// Valid reports whether both IDs are non-zero, the W3C validity rule.
func (c SpanContext) Valid() bool {
	return c.TraceID != ([16]byte{}) && c.SpanID != ([8]byte{})
}

// Child derives a context for a new span under c: same trace ID, fresh
// random span ID. Each outbound request carries a Child of the client's
// root context, so per-request server trees stay distinguishable while
// sharing one trace ID.
func (c SpanContext) Child() SpanContext {
	nc := c
	_, _ = rand.Read(nc.SpanID[:])
	if nc.SpanID == ([8]byte{}) {
		nc.SpanID[0] = 1
	}
	return nc
}

// Traceparent renders the context in the W3C wire format:
// version 00, lowercase hex IDs, sampled flag set
// ("00-<32 hex>-<16 hex>-01"). Invalid contexts render to "".
func (c SpanContext) Traceparent() string {
	if !c.Valid() {
		return ""
	}
	return "00-" + hex.EncodeToString(c.TraceID[:]) + "-" + hex.EncodeToString(c.SpanID[:]) + "-01"
}

// ParseTraceparent parses a W3C traceparent header value. Unknown (non-ff)
// versions are accepted with the version-00 field layout, per the spec's
// forward-compatibility rule; malformed values, version ff, and all-zero
// IDs are errors. Callers treat an error as "no remote context" and mint
// their own root.
func ParseTraceparent(s string) (SpanContext, error) {
	var c SpanContext
	// version(2) '-' traceID(32) '-' spanID(16) '-' flags(2); later
	// versions may append fields after the flags.
	if len(s) < 55 {
		return c, fmt.Errorf("obs: traceparent too short (%d bytes)", len(s))
	}
	if s[2] != '-' || s[35] != '-' || s[52] != '-' {
		return c, fmt.Errorf("obs: traceparent field separators misplaced")
	}
	ver := s[:2]
	if !isLowerHex(ver) {
		return c, fmt.Errorf("obs: traceparent version %q is not hex", ver)
	}
	if ver == "ff" {
		return c, fmt.Errorf("obs: traceparent version ff is forbidden")
	}
	if ver == "00" && len(s) != 55 {
		return c, fmt.Errorf("obs: version-00 traceparent must be 55 bytes, got %d", len(s))
	}
	if len(s) > 55 && s[55] != '-' {
		return c, fmt.Errorf("obs: traceparent trailing fields must be dash-separated")
	}
	traceID, spanID, flags := s[3:35], s[36:52], s[53:55]
	if !isLowerHex(traceID) || !isLowerHex(spanID) || !isLowerHex(flags) {
		return c, fmt.Errorf("obs: traceparent IDs must be lowercase hex")
	}
	if _, err := hex.Decode(c.TraceID[:], []byte(traceID)); err != nil {
		return c, err
	}
	if _, err := hex.Decode(c.SpanID[:], []byte(spanID)); err != nil {
		return c, err
	}
	if !c.Valid() {
		return SpanContext{}, fmt.Errorf("obs: traceparent carries an all-zero ID")
	}
	return c, nil
}

func isLowerHex(s string) bool {
	for i := 0; i < len(s); i++ {
		c := s[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}
