package obs

import (
	"sync"
	"testing"
	"time"
)

func TestProgressMonotoneMerge(t *testing.T) {
	p := NewProgress()
	p.Publish(ProgressSnapshot{UnitsDone: 3, UnitsTotal: 10, Races: 1})
	// A stale publish must not regress anything.
	p.Publish(ProgressSnapshot{UnitsDone: 1, UnitsTotal: 10})
	snap, ver, _ := p.Load()
	if snap.UnitsDone != 3 || snap.UnitsTotal != 10 || snap.Races != 1 {
		t.Fatalf("snapshot regressed: %+v", snap)
	}
	if ver != 1 {
		t.Fatalf("version = %d, want 1 (stale publish must not bump)", ver)
	}
	p.Publish(ProgressSnapshot{UnitsDone: 7, EventsSkipped: 40, PagesCopied: 5})
	snap, ver, _ = p.Load()
	if snap.UnitsDone != 7 || snap.EventsSkipped != 40 || snap.PagesCopied != 5 || snap.UnitsTotal != 10 {
		t.Fatalf("merge wrong: %+v", snap)
	}
	if ver != 2 {
		t.Fatalf("version = %d, want 2", ver)
	}
}

func TestProgressBroadcast(t *testing.T) {
	p := NewProgress()
	_, _, wake := p.Load()
	done := make(chan ProgressSnapshot, 1)
	go func() {
		<-wake
		snap, _, _ := p.Load()
		done <- snap
	}()
	p.Publish(ProgressSnapshot{UnitsDone: 1, UnitsTotal: 2})
	select {
	case snap := <-done:
		if snap.UnitsDone != 1 {
			t.Fatalf("waiter saw %+v", snap)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("waiter never woke")
	}
}

func TestProgressBumpWakesWithoutChange(t *testing.T) {
	p := NewProgress()
	_, ver0, wake := p.Load()
	p.Bump()
	select {
	case <-wake:
	default:
		t.Fatal("Bump did not close the wake channel")
	}
	snap, ver, _ := p.Load()
	if ver <= ver0 {
		t.Fatalf("version did not advance: %d -> %d", ver0, ver)
	}
	if snap != (ProgressSnapshot{}) {
		t.Fatalf("Bump changed counters: %+v", snap)
	}
}

func TestProgressNilSafe(t *testing.T) {
	var p *Progress
	p.Publish(ProgressSnapshot{UnitsDone: 1})
	p.Bump()
	snap, ver, wake := p.Load()
	if snap != (ProgressSnapshot{}) || ver != 0 || wake != nil {
		t.Fatal("nil Progress not inert")
	}
}

func TestProgressConcurrentPublish(t *testing.T) {
	p := NewProgress()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := int64(1); i <= 50; i++ {
				p.Publish(ProgressSnapshot{UnitsDone: i, UnitsTotal: 50})
			}
		}(g)
	}
	// Concurrent reader asserting monotonicity.
	stop := make(chan struct{})
	var rdWG sync.WaitGroup
	rdWG.Add(1)
	go func() {
		defer rdWG.Done()
		var last ProgressSnapshot
		for {
			select {
			case <-stop:
				return
			default:
			}
			snap, _, _ := p.Load()
			if snap.UnitsDone < last.UnitsDone || snap.UnitsTotal < last.UnitsTotal {
				t.Error("progress regressed under concurrency")
				return
			}
			last = snap
		}
	}()
	wg.Wait()
	close(stop)
	rdWG.Wait()
	snap, _, _ := p.Load()
	if snap.UnitsDone != 50 || snap.UnitsTotal != 50 {
		t.Fatalf("final snapshot %+v, want 50/50", snap)
	}
}
