package obs

import (
	"encoding/json"
	"io"
	"time"
)

// chromeEvent is one Chrome trace-event "complete" record ("ph":"X"):
// a named interval with microsecond timestamp and duration, grouped by
// process/thread IDs. chrome://tracing and Perfetto nest X events on one
// tid by time containment, which matches SpanRecord's lane model.
type chromeEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	TS   float64        `json:"ts"`  // microseconds
	Dur  float64        `json:"dur"` // microseconds
	PID  int            `json:"pid"`
	TID  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// chromeDoc is the JSON-object flavor of the trace-event format (the
// array flavor is also accepted by viewers, but the object flavor lets us
// name the time unit explicitly).
type chromeDoc struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// WriteChrome renders the trace's spans as Chrome trace-event JSON,
// loadable in chrome://tracing or https://ui.perfetto.dev. Spans are
// emitted in the deterministic Spans() order; args become the event's
// args panel. The output contains only ph:"X" complete events (CI's
// profile-export smoke asserts exactly that); multi-process output with
// metadata events goes through WriteChromeProcesses instead.
func (t *Trace) WriteChrome(w io.Writer) error {
	spans := t.Spans()
	doc := chromeDoc{TraceEvents: make([]chromeEvent, 0, len(spans)), DisplayTimeUnit: "ms"}
	for _, s := range spans {
		doc.TraceEvents = append(doc.TraceEvents, completeEvent(s, 1, 0))
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(doc)
}

// Process is one process's worth of spans for a merged multi-process
// Chrome trace: the rader client is one process, the raderd server
// another, aligned on a shared timeline by Offset (the server's t0 minus
// the client's t0, so server spans land where they actually happened
// relative to the client's clock).
type Process struct {
	PID    int
	Name   string
	Offset time.Duration
	Spans  []SpanRecord
	// Labels become a "process_labels" metadata event (e.g. the
	// traceparent linking the processes).
	Labels map[string]string
}

// WriteChromeProcesses renders several processes' spans into one Chrome
// trace-event document: per-process "M" metadata events naming each
// process, then ph:"X" complete events with each process's offset
// applied. Events whose offset-adjusted start would be negative are
// clamped to 0 (clock skew between hosts must not hide spans off the left
// edge of the viewer).
func WriteChromeProcesses(w io.Writer, procs []Process) error {
	doc := chromeDoc{DisplayTimeUnit: "ms"}
	for _, p := range procs {
		doc.TraceEvents = append(doc.TraceEvents, chromeEvent{
			Name: "process_name", Ph: "M", PID: p.PID,
			Args: map[string]any{"name": p.Name},
		})
		if len(p.Labels) > 0 {
			labels := make(map[string]any, len(p.Labels))
			for k, v := range p.Labels {
				labels[k] = v
			}
			doc.TraceEvents = append(doc.TraceEvents, chromeEvent{
				Name: "process_labels", Ph: "M", PID: p.PID, Args: labels,
			})
		}
		for _, s := range p.Spans {
			doc.TraceEvents = append(doc.TraceEvents, completeEvent(s, p.PID, p.Offset))
		}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(doc)
}

func completeEvent(s SpanRecord, pid int, offset time.Duration) chromeEvent {
	start := s.Start + offset
	if start < 0 {
		start = 0
	}
	ev := chromeEvent{
		Name: s.Name, Ph: "X",
		TS:  float64(start.Nanoseconds()) / 1e3,
		Dur: float64(s.Dur.Nanoseconds()) / 1e3,
		PID: pid, TID: s.TID,
	}
	if len(s.Args) > 0 {
		ev.Args = make(map[string]any, len(s.Args))
		for _, a := range s.Args {
			ev.Args[a.Key] = a.Value
		}
	}
	return ev
}
