package obs

import (
	"encoding/json"
	"io"
)

// chromeEvent is one Chrome trace-event "complete" record ("ph":"X"):
// a named interval with microsecond timestamp and duration, grouped by
// process/thread IDs. chrome://tracing and Perfetto nest X events on one
// tid by time containment, which matches SpanRecord's lane model.
type chromeEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	TS   float64        `json:"ts"`  // microseconds
	Dur  float64        `json:"dur"` // microseconds
	PID  int            `json:"pid"`
	TID  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// chromeDoc is the JSON-object flavor of the trace-event format (the
// array flavor is also accepted by viewers, but the object flavor lets us
// name the time unit explicitly).
type chromeDoc struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// WriteChrome renders the trace's spans as Chrome trace-event JSON,
// loadable in chrome://tracing or https://ui.perfetto.dev. Spans are
// emitted in the deterministic Spans() order; args become the event's
// args panel.
func (t *Trace) WriteChrome(w io.Writer) error {
	spans := t.Spans()
	doc := chromeDoc{TraceEvents: make([]chromeEvent, 0, len(spans)), DisplayTimeUnit: "ms"}
	for _, s := range spans {
		ev := chromeEvent{
			Name: s.Name, Ph: "X",
			TS:  float64(s.Start.Nanoseconds()) / 1e3,
			Dur: float64(s.Dur.Nanoseconds()) / 1e3,
			PID: 1, TID: s.TID,
		}
		if len(s.Args) > 0 {
			ev.Args = make(map[string]any, len(s.Args))
			for _, a := range s.Args {
				ev.Args[a.Key] = a.Value
			}
		}
		doc.TraceEvents = append(doc.TraceEvents, ev)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(doc)
}
