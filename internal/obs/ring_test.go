package obs

import (
	"fmt"
	"sync"
	"testing"
)

func TestRequestRingBoundsAndOrder(t *testing.T) {
	r := NewRequestRing(3)
	if r.Cap() != 3 || r.Len() != 0 {
		t.Fatalf("fresh ring: cap=%d len=%d", r.Cap(), r.Len())
	}
	for i := 1; i <= 5; i++ {
		r.Add(RequestRecord{ID: fmt.Sprintf("req-%d", i), Status: 200})
	}
	if r.Len() != 3 {
		t.Fatalf("Len = %d after 5 adds to cap-3 ring, want 3", r.Len())
	}
	snap := r.Snapshot()
	want := []string{"req-5", "req-4", "req-3"}
	if len(snap) != len(want) {
		t.Fatalf("snapshot has %d records, want %d", len(snap), len(want))
	}
	for i, w := range want {
		if snap[i].ID != w {
			t.Errorf("snapshot[%d].ID = %q, want %q (newest first)", i, snap[i].ID, w)
		}
	}
}

func TestRequestRingPartial(t *testing.T) {
	r := NewRequestRing(8)
	r.Add(RequestRecord{ID: "a"})
	r.Add(RequestRecord{ID: "b"})
	snap := r.Snapshot()
	if len(snap) != 2 || snap[0].ID != "b" || snap[1].ID != "a" {
		t.Fatalf("partial snapshot wrong: %+v", snap)
	}
}

func TestRequestRingNilSafe(t *testing.T) {
	var r *RequestRing
	r.Add(RequestRecord{ID: "x"}) // must not panic
	if r.Len() != 0 || r.Cap() != 0 || r.Snapshot() != nil {
		t.Fatal("nil ring not inert")
	}
}

func TestRequestRingClampsCapacity(t *testing.T) {
	r := NewRequestRing(0)
	r.Add(RequestRecord{ID: "only"})
	if r.Cap() != 1 || r.Len() != 1 {
		t.Fatalf("cap=%d len=%d, want 1/1", r.Cap(), r.Len())
	}
}

func TestRequestRingConcurrent(t *testing.T) {
	r := NewRequestRing(16)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				r.Add(RequestRecord{ID: fmt.Sprintf("g%d-%d", g, i)})
				_ = r.Snapshot()
			}
		}(g)
	}
	wg.Wait()
	if r.Len() != 16 {
		t.Fatalf("Len = %d, want 16", r.Len())
	}
}
