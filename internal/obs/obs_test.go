package obs

import (
	"bufio"
	"bytes"
	"fmt"
	"strconv"
	"strings"
	"sync"
	"testing"
)

func TestCounterGauge(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(41)
	if got := c.Load(); got != 42 {
		t.Fatalf("counter = %d, want 42", got)
	}
	var g Gauge
	g.Set(1.5)
	g.Add(-0.5)
	if got := g.Load(); got != 1.0 {
		t.Fatalf("gauge = %g, want 1", got)
	}
}

func TestCounterConcurrent(t *testing.T) {
	var c Counter
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if got := c.Load(); got != 8000 {
		t.Fatalf("counter = %d, want 8000", got)
	}
}

func TestHistogramBuckets(t *testing.T) {
	h := NewHistogram([]float64{1, 2, 5})
	for _, v := range []float64{0.5, 1.0, 1.5, 3, 10} {
		h.Observe(v)
	}
	cum := h.Cumulative()
	want := []uint64{2, 3, 4, 5} // ≤1: {0.5,1}; ≤2: +1.5; ≤5: +3; +Inf: +10
	for i := range want {
		if cum[i] != want[i] {
			t.Fatalf("cumulative[%d] = %d, want %d (all %v)", i, cum[i], want[i], cum)
		}
	}
	if h.Count() != 5 || h.Sum() != 16 {
		t.Fatalf("count=%d sum=%g, want 5, 16", h.Count(), h.Sum())
	}
}

func TestRegistryIdempotentAndKindClash(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("x_total", "help", `k="v"`)
	b := r.Counter("x_total", "help", `k="v"`)
	if a != b {
		t.Fatal("same (name, labels) must return the same counter")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("registering x_total as a gauge must panic")
		}
	}()
	r.Gauge("x_total", "help", "")
}

// parseExposition checks the global format rules the service tests rely
// on: every family has exactly one # HELP and one # TYPE line (no
// duplicate families), every sample belongs to a declared family, and
// histogram bucket series are monotonically non-decreasing in le order.
func parseExposition(t *testing.T, text string) {
	t.Helper()
	type fam struct{ help, typ int }
	fams := map[string]*fam{}
	var order []string
	sc := bufio.NewScanner(strings.NewReader(text))
	var bucketRuns map[string][]uint64 // series prefix -> counts in emission order
	bucketRuns = map[string][]uint64{}
	for sc.Scan() {
		line := sc.Text()
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# HELP ") || strings.HasPrefix(line, "# TYPE ") {
			parts := strings.SplitN(line, " ", 4)
			if len(parts) < 4 {
				t.Fatalf("malformed comment line %q", line)
			}
			name := parts[2]
			f, ok := fams[name]
			if !ok {
				f = &fam{}
				fams[name] = f
				order = append(order, name)
			}
			if parts[1] == "HELP" {
				f.help++
			} else {
				f.typ++
			}
			continue
		}
		// Sample line: name or name{labels}, value.
		sp := strings.LastIndex(line, " ")
		if sp < 0 {
			t.Fatalf("malformed sample line %q", line)
		}
		series, value := line[:sp], line[sp+1:]
		name := series
		if i := strings.IndexByte(series, '{'); i >= 0 {
			name = series[:i]
		}
		base := name
		for _, suffix := range []string{"_bucket", "_sum", "_count"} {
			if strings.HasSuffix(name, suffix) {
				if f, ok := fams[strings.TrimSuffix(name, suffix)]; ok && f.typ > 0 {
					base = strings.TrimSuffix(name, suffix)
				}
			}
		}
		if _, ok := fams[base]; !ok {
			t.Errorf("sample %q has no declared family", line)
		}
		if strings.HasSuffix(name, "_bucket") {
			// Strip the le label to group one bucket run.
			prefix := series
			if i := strings.Index(series, `le="`); i >= 0 {
				j := strings.IndexByte(series[i+4:], '"')
				prefix = series[:i] + series[i+4+j+1:]
			}
			n, err := strconv.ParseUint(value, 10, 64)
			if err != nil {
				t.Fatalf("bucket value %q: %v", value, err)
			}
			bucketRuns[prefix] = append(bucketRuns[prefix], n)
		}
	}
	for name, f := range fams {
		if f.help != 1 || f.typ != 1 {
			t.Errorf("family %s has %d HELP and %d TYPE lines, want exactly 1 each", name, f.help, f.typ)
		}
	}
	for prefix, run := range bucketRuns {
		for i := 1; i < len(run); i++ {
			if run[i] < run[i-1] {
				t.Errorf("bucket run %s not monotone: %v", prefix, run)
			}
		}
	}
}

func TestWritePrometheusFormat(t *testing.T) {
	r := NewRegistry()
	r.Counter("jobs_total", "Jobs by state.", `state="done"`).Add(3)
	r.Counter("jobs_total", "Jobs by state.", `state="failed"`).Inc()
	r.Gauge("depth", "Queue depth.", "").Set(2)
	r.GaugeFunc("ratio", "A computed ratio.", "", func() float64 { return 0.5 })
	h := r.Histogram("lat_seconds", "Latency.", `det="sp+"`, []float64{0.1, 1})
	h.Observe(0.05)
	h.Observe(5)

	var buf bytes.Buffer
	r.WritePrometheus(&buf)
	text := buf.String()
	for _, want := range []string{
		"# HELP jobs_total Jobs by state.",
		"# TYPE jobs_total counter",
		`jobs_total{state="done"} 3`,
		`jobs_total{state="failed"} 1`,
		"depth 2",
		"ratio 0.5",
		"# TYPE lat_seconds histogram",
		`lat_seconds_bucket{det="sp+",le="0.1"} 1`,
		`lat_seconds_bucket{det="sp+",le="1"} 1`,
		`lat_seconds_bucket{det="sp+",le="+Inf"} 2`,
		`lat_seconds_sum{det="sp+"} 5.05`,
		`lat_seconds_count{det="sp+"} 2`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q:\n%s", want, text)
		}
	}
	parseExposition(t, text)

	// Determinism: a second render of the same state is byte-identical.
	var buf2 bytes.Buffer
	r.WritePrometheus(&buf2)
	if buf.String() != buf2.String() {
		t.Error("two renders of one state differ")
	}
}

func TestSnapshot(t *testing.T) {
	r := NewRegistry()
	r.Counter("a_total", "h", "").Add(7)
	r.Histogram("b_seconds", "h", `x="y"`, []float64{1}).Observe(0.5)
	snap := r.Snapshot()
	if snap["a_total"] != uint64(7) {
		t.Fatalf("snapshot a_total = %v", snap["a_total"])
	}
	if snap[`b_seconds_count{x="y"}`] != uint64(1) {
		t.Fatalf("snapshot histogram count = %v", snap[`b_seconds_count{x="y"}`])
	}
}

func TestEventCountsArgsAndTotal(t *testing.T) {
	c := EventCounts{FrameEnters: 2, Loads: 5, BagOps: 9}
	if c.Total() != 7 {
		t.Fatalf("Total = %d, want 7 (bookkeeping classes excluded)", c.Total())
	}
	args := c.Args()
	if len(args) != 3 {
		t.Fatalf("Args = %v, want 3 non-zero entries", args)
	}
	if args[0].Key != "frameEnters" || fmt.Sprint(args[0].Value) != "2" {
		t.Fatalf("Args[0] = %v", args[0])
	}
}
