package obs

import (
	"sort"
	"sync"
	"time"
)

// Arg is one key/value annotation on a span: event counts, byte totals,
// race tallies. Values should be strings or numbers so the Chrome export
// renders them directly.
type Arg struct {
	Key   string
	Value any
}

// SpanRecord is one finished span: a named interval on a lane (TID),
// positioned by monotonic time since the owning Trace started. Span trees
// are implicit: a span whose interval contains another's on the same lane
// is its ancestor, which is exactly how Chrome's trace viewer nests
// complete events.
type SpanRecord struct {
	Name  string
	TID   int
	Start time.Duration
	Dur   time.Duration
	Args  []Arg
}

// Sink receives finished spans. A *Trace is the standard buffering sink;
// tests plug their own to assert on emission order.
type Sink interface {
	Emit(SpanRecord)
}

// Trace collects spans with monotonic timing. The zero value is NOT the
// off switch — a nil *Trace is: every method on a nil *Trace (and on the
// nil *Span it hands out) is a no-op, so instrumented code calls
// Start/End unconditionally and a disabled pipeline pays two predicted
// branches and zero allocations per would-be span.
//
// A Trace is safe for concurrent use; parallel phases (the sweep's
// workers) record on distinct lanes via StartTID.
type Trace struct {
	t0 time.Time

	mu    sync.Mutex
	spans []SpanRecord
	ctx   SpanContext
}

// NewTrace returns a collecting trace whose clock starts now.
func NewTrace() *Trace { return &Trace{t0: time.Now()} }

// SetContext attaches a distributed-trace identity to the trace — either
// a freshly minted root (the client side) or a context extracted from an
// incoming traceparent header (the server side). No-op on nil.
func (t *Trace) SetContext(c SpanContext) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.ctx = c
	t.mu.Unlock()
}

// Context returns the trace's distributed identity (zero when none was
// set, and on a nil trace).
func (t *Trace) Context() SpanContext {
	if t == nil {
		return SpanContext{}
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.ctx
}

// T0 returns the wall-clock instant the trace's monotonic clock started,
// the anchor for aligning span trees recorded by different processes.
// Zero on a nil trace.
func (t *Trace) T0() time.Time {
	if t == nil {
		return time.Time{}
	}
	return t.t0
}

// Span is an open interval handle. End finishes it; Arg annotates it.
// Methods on a nil *Span are no-ops (the nil-sink fast path).
type Span struct {
	tr    *Trace
	name  string
	tid   int
	start time.Duration
	args  []Arg
}

// Start opens a span on lane 0.
func (t *Trace) Start(name string) *Span { return t.StartTID(0, name) }

// StartTID opens a span on the given lane. Lanes separate concurrent
// phases so containment-based nesting stays well-defined.
func (t *Trace) StartTID(tid int, name string) *Span {
	if t == nil {
		return nil
	}
	return &Span{tr: t, name: name, tid: tid, start: time.Since(t.t0)}
}

// Arg annotates the span, returning it for chaining.
func (s *Span) Arg(key string, value any) *Span {
	if s == nil {
		return nil
	}
	s.args = append(s.args, Arg{Key: key, Value: value})
	return s
}

// End closes the span and records it on the owning trace.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.tr.Emit(SpanRecord{
		Name: s.name, TID: s.tid,
		Start: s.start, Dur: time.Since(s.tr.t0) - s.start,
		Args: s.args,
	})
}

// Emit implements Sink: it appends a finished record directly, for spans
// timed elsewhere.
func (t *Trace) Emit(rec SpanRecord) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.spans = append(t.spans, rec)
	t.mu.Unlock()
}

// Spans returns a copy of the finished spans ordered by (start, lane,
// name) — deterministic for tests even when parallel lanes finish in a
// racy order.
func (t *Trace) Spans() []SpanRecord {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	out := make([]SpanRecord, len(t.spans))
	copy(out, t.spans)
	t.mu.Unlock()
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Start != out[j].Start {
			return out[i].Start < out[j].Start
		}
		if out[i].TID != out[j].TID {
			return out[i].TID < out[j].TID
		}
		return out[i].Name < out[j].Name
	})
	return out
}
