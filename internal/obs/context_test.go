package obs

import (
	"strings"
	"testing"
)

func TestSpanContextRoundTrip(t *testing.T) {
	c := NewSpanContext()
	if !c.Valid() {
		t.Fatal("NewSpanContext returned invalid context")
	}
	wire := c.Traceparent()
	if len(wire) != 55 {
		t.Fatalf("traceparent length = %d, want 55: %q", len(wire), wire)
	}
	if !strings.HasPrefix(wire, "00-") || !strings.HasSuffix(wire, "-01") {
		t.Fatalf("traceparent framing wrong: %q", wire)
	}
	got, err := ParseTraceparent(wire)
	if err != nil {
		t.Fatalf("ParseTraceparent(%q): %v", wire, err)
	}
	if got != c {
		t.Fatalf("round trip mismatch: got %+v want %+v", got, c)
	}
}

func TestSpanContextChild(t *testing.T) {
	c := NewSpanContext()
	kid := c.Child()
	if kid.TraceID != c.TraceID {
		t.Fatal("Child changed the trace ID")
	}
	if kid.SpanID == c.SpanID {
		t.Fatal("Child kept the parent span ID")
	}
	if !kid.Valid() {
		t.Fatal("Child produced an invalid context")
	}
}

func TestSpanContextZeroInvalid(t *testing.T) {
	var zero SpanContext
	if zero.Valid() {
		t.Fatal("zero context claims validity")
	}
	if got := zero.Traceparent(); got != "" {
		t.Fatalf("zero context renders %q, want empty", got)
	}
}

func TestParseTraceparentRejects(t *testing.T) {
	valid := "00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01"
	if _, err := ParseTraceparent(valid); err != nil {
		t.Fatalf("canonical example rejected: %v", err)
	}
	bad := []struct{ name, in string }{
		{"empty", ""},
		{"short", "00-abc"},
		{"version ff", "ff-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01"},
		{"version not hex", "zz-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01"},
		{"uppercase trace id", "00-0AF7651916CD43DD8448EB211C80319C-b7ad6b7169203331-01"},
		{"all-zero trace id", "00-00000000000000000000000000000000-b7ad6b7169203331-01"},
		{"all-zero span id", "00-0af7651916cd43dd8448eb211c80319c-0000000000000000-01"},
		{"misplaced separators", "00_0af7651916cd43dd8448eb211c80319c_b7ad6b7169203331_01"},
		{"v00 with trailing field", valid + "-extra"},
		{"trailing junk without dash", valid + "x"},
	}
	for _, tc := range bad {
		if _, err := ParseTraceparent(tc.in); err == nil {
			t.Errorf("%s: ParseTraceparent(%q) accepted, want error", tc.name, tc.in)
		}
	}
	// Forward compatibility: an unknown (non-ff) version with trailing
	// dash-separated fields parses with the version-00 layout.
	future := "cc-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01-futurefield"
	c, err := ParseTraceparent(future)
	if err != nil {
		t.Fatalf("future version rejected: %v", err)
	}
	if !c.Valid() {
		t.Fatal("future version parsed to invalid context")
	}
}

func TestTraceContextAttachment(t *testing.T) {
	tr := NewTrace()
	if got := tr.Context(); got.Valid() {
		t.Fatal("fresh trace has a context")
	}
	c := NewSpanContext()
	tr.SetContext(c)
	if got := tr.Context(); got != c {
		t.Fatalf("Context() = %+v, want %+v", got, c)
	}

	var nilTr *Trace
	nilTr.SetContext(c) // must not panic
	if got := nilTr.Context(); got.Valid() {
		t.Fatal("nil trace returned a valid context")
	}
	if !nilTr.T0().IsZero() {
		t.Fatal("nil trace returned a non-zero T0")
	}
}
