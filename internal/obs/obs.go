// Package obs is the pipeline's zero-dependency observability core:
// lightweight spans with monotonic timing (span.go), atomic counters,
// gauges and fixed-bucket histograms collected in a Registry that renders
// Prometheus text exposition (this file), Chrome trace-event export of a
// span tree (chrome.go), and the per-event-class accounting detectors
// publish (counts.go).
//
// The package deliberately imports nothing beyond the standard library and
// is shaped around two constraints of this codebase:
//
//   - The replay decode loop and detector hot paths must stay allocation-
//     free and branch-cheap when nobody is watching. Everything here is
//     therefore nil-safe: a nil *Trace hands out nil *Span handles whose
//     methods are no-ops, so instrumented code calls Start/End
//     unconditionally and pays two predicted branches when observability
//     is off (TestNilTraceAllocs pins zero allocations).
//   - The analysis service renders its /metrics exposition by hand (no
//     Prometheus client dependency is available), so Registry reproduces
//     the text format — # HELP, # TYPE, cumulative histogram buckets —
//     deterministically: families in registration order, children in
//     label order, equal states rendering to equal bytes.
package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// DefBuckets are the default latency histogram upper bounds in seconds,
// spanning sub-millisecond corpus replays through multi-second sweeps.
// They match the service's historical bucket layout, so dashboards built
// against the pre-obs exposition keep working.
var DefBuckets = []float64{0.001, 0.005, 0.025, 0.1, 0.5, 2.5, 10}

// Counter is a monotonically increasing atomic counter.
type Counter struct{ v atomic.Uint64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Load returns the current value.
func (c *Counter) Load() uint64 { return c.v.Load() }

// Gauge is an atomic float64 gauge.
type Gauge struct{ bits atomic.Uint64 }

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add adds delta (CAS loop; gauges are low-frequency).
func (g *Gauge) Add(delta float64) {
	for {
		old := g.bits.Load()
		nv := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, nv) {
			return
		}
	}
}

// Load returns the current value.
func (g *Gauge) Load() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram is a fixed-bucket histogram. Counts are kept per bucket and
// cumulated at render time, the Prometheus convention.
type Histogram struct {
	bounds []float64 // upper bounds; counts has one extra slot for +Inf
	counts []atomic.Uint64
	sum    Gauge
	n      atomic.Uint64
}

// NewHistogram builds a histogram over the given upper bounds (which must
// be sorted ascending; nil means DefBuckets). Prefer Registry.Histogram,
// which also registers it for exposition.
func NewHistogram(bounds []float64) *Histogram {
	if bounds == nil {
		bounds = DefBuckets
	}
	return &Histogram{bounds: bounds, counts: make([]atomic.Uint64, len(bounds)+1)}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.sum.Add(v)
	h.n.Add(1)
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.n.Load() }

// Sum returns the sum of observed values.
func (h *Histogram) Sum() float64 { return h.sum.Load() }

// Cumulative returns the cumulative bucket counts (one per bound, plus a
// final +Inf entry equal to Count).
func (h *Histogram) Cumulative() []uint64 {
	out := make([]uint64, len(h.counts))
	var run uint64
	for i := range h.counts {
		run += h.counts[i].Load()
		out[i] = run
	}
	return out
}

// metric kinds for exposition.
const (
	kindCounter   = "counter"
	kindGauge     = "gauge"
	kindHistogram = "histogram"
)

// child is one labeled instance of a family: exactly one of the value
// fields is set.
type child struct {
	labels string // rendered label pairs, e.g. `state="done"`; "" for none
	c      *Counter
	g      *Gauge
	gf     func() float64
	h      *Histogram
}

// family is one metric family: a name, help text, kind, and its labeled
// children.
type family struct {
	name, help, kind string
	children         []*child
	byLabel          map[string]*child
}

func (f *family) get(labels string) (*child, bool) {
	ch, ok := f.byLabel[labels]
	return ch, ok
}

func (f *family) add(ch *child) {
	f.children = append(f.children, ch)
	f.byLabel[ch.labels] = ch
}

// Registry collects metric families and renders them in Prometheus text
// exposition format. Families render in registration order; children
// within a family render in label order. Registering the same (name,
// labels) twice returns the existing instrument, so callers can treat
// registration as idempotent lookup; registering one name under two
// different kinds panics (a programming error the exposition format
// cannot express).
type Registry struct {
	mu       sync.Mutex
	families []*family
	byName   map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry { return &Registry{byName: make(map[string]*family)} }

func (r *Registry) family(name, help, kind string) *family {
	f, ok := r.byName[name]
	if !ok {
		f = &family{name: name, help: help, kind: kind, byLabel: make(map[string]*child)}
		r.families = append(r.families, f)
		r.byName[name] = f
		return f
	}
	if f.kind != kind {
		panic(fmt.Sprintf("obs: metric %q registered as %s and %s", name, f.kind, kind))
	}
	return f
}

// Counter registers (or returns) the counter name{labels}. labels is the
// rendered label-pair list without braces (e.g. `state="done"`), empty for
// an unlabeled metric.
func (r *Registry) Counter(name, help, labels string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.family(name, help, kindCounter)
	if ch, ok := f.get(labels); ok {
		return ch.c
	}
	ch := &child{labels: labels, c: &Counter{}}
	f.add(ch)
	return ch.c
}

// Gauge registers (or returns) the gauge name{labels}.
func (r *Registry) Gauge(name, help, labels string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.family(name, help, kindGauge)
	if ch, ok := f.get(labels); ok {
		return ch.g
	}
	ch := &child{labels: labels, g: &Gauge{}}
	f.add(ch)
	return ch.g
}

// GaugeFunc registers a gauge whose value is computed at scrape time —
// queue depths, cache residency, and other state owned elsewhere.
func (r *Registry) GaugeFunc(name, help, labels string, fn func() float64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.family(name, help, kindGauge)
	if _, ok := f.get(labels); ok {
		return
	}
	f.add(&child{labels: labels, gf: fn})
}

// Histogram registers (or returns) the histogram name{labels} over bounds
// (nil = DefBuckets).
func (r *Registry) Histogram(name, help, labels string, bounds []float64) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.family(name, help, kindHistogram)
	if ch, ok := f.get(labels); ok {
		return ch.h
	}
	ch := &child{labels: labels, h: NewHistogram(bounds)}
	f.add(ch)
	return ch.h
}

// EscapeLabelValue escapes a label value per the Prometheus text
// exposition format: backslash, double-quote and newline become \\, \"
// and \n. Nothing else is touched — %q-style escaping would turn tabs or
// non-ASCII bytes into escapes the format does not define, corrupting the
// stream for strict parsers.
func EscapeLabelValue(s string) string {
	// Fast path: nothing to escape.
	clean := true
	for i := 0; i < len(s); i++ {
		if c := s[i]; c == '\\' || c == '"' || c == '\n' {
			clean = false
			break
		}
	}
	if clean {
		return s
	}
	var b strings.Builder
	b.Grow(len(s) + 8)
	for i := 0; i < len(s); i++ {
		switch c := s[i]; c {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteByte(c)
		}
	}
	return b.String()
}

// Label renders one label pair key="value" with the value escaped for the
// text exposition format. Use this (not %q) to build the labels argument
// of Counter/Gauge/Histogram when the value comes from user input.
func Label(key, value string) string {
	return key + `="` + EscapeLabelValue(value) + `"`
}

// escapeHelp escapes HELP text per the exposition format (backslash and
// newline only; quotes are legal in help text).
func escapeHelp(s string) string {
	if !strings.ContainsAny(s, "\\\n") {
		return s
	}
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// series renders one sample line: name, optional label pairs, value.
func series(w io.Writer, name, labels, value string) {
	if labels == "" {
		fmt.Fprintf(w, "%s %s\n", name, value)
	} else {
		fmt.Fprintf(w, "%s{%s} %s\n", name, labels, value)
	}
}

// joinLabels appends extra to labels with a comma when both are present.
func joinLabels(labels, extra string) string {
	if labels == "" {
		return extra
	}
	return labels + "," + extra
}

// WritePrometheus renders every family in the text exposition format.
// Equal registry states render to equal bytes.
func (r *Registry) WritePrometheus(w io.Writer) {
	r.mu.Lock()
	fams := make([]*family, len(r.families))
	copy(fams, r.families)
	r.mu.Unlock()

	for _, f := range fams {
		fmt.Fprintf(w, "# HELP %s %s\n", f.name, escapeHelp(f.help))
		fmt.Fprintf(w, "# TYPE %s %s\n", f.name, f.kind)
		r.mu.Lock()
		kids := make([]*child, len(f.children))
		copy(kids, f.children)
		r.mu.Unlock()
		sort.SliceStable(kids, func(i, j int) bool { return kids[i].labels < kids[j].labels })
		for _, ch := range kids {
			switch {
			case ch.c != nil:
				series(w, f.name, ch.labels, fmt.Sprintf("%d", ch.c.Load()))
			case ch.g != nil:
				series(w, f.name, ch.labels, fmt.Sprintf("%g", ch.g.Load()))
			case ch.gf != nil:
				series(w, f.name, ch.labels, fmt.Sprintf("%g", ch.gf()))
			case ch.h != nil:
				cum := ch.h.Cumulative()
				for i, ub := range ch.h.bounds {
					le := fmt.Sprintf("le=%q", fmt.Sprintf("%g", ub))
					series(w, f.name+"_bucket", joinLabels(ch.labels, le), fmt.Sprintf("%d", cum[i]))
				}
				series(w, f.name+"_bucket", joinLabels(ch.labels, `le="+Inf"`), fmt.Sprintf("%d", cum[len(cum)-1]))
				series(w, f.name+"_sum", ch.labels, fmt.Sprintf("%g", ch.h.Sum()))
				series(w, f.name+"_count", ch.labels, fmt.Sprintf("%d", ch.h.Count()))
			}
		}
	}
}

// Snapshot returns a flat name{labels} → value map of every series, for
// /debug/vars-style JSON export. Histograms export their count and sum.
func (r *Registry) Snapshot() map[string]any {
	r.mu.Lock()
	fams := make([]*family, len(r.families))
	copy(fams, r.families)
	r.mu.Unlock()
	out := make(map[string]any)
	key := func(name, labels string) string {
		if labels == "" {
			return name
		}
		return name + "{" + labels + "}"
	}
	for _, f := range fams {
		r.mu.Lock()
		kids := make([]*child, len(f.children))
		copy(kids, f.children)
		r.mu.Unlock()
		for _, ch := range kids {
			switch {
			case ch.c != nil:
				out[key(f.name, ch.labels)] = ch.c.Load()
			case ch.g != nil:
				out[key(f.name, ch.labels)] = ch.g.Load()
			case ch.gf != nil:
				out[key(f.name, ch.labels)] = ch.gf()
			case ch.h != nil:
				out[key(f.name+"_count", ch.labels)] = ch.h.Count()
				out[key(f.name+"_sum", ch.labels)] = ch.h.Sum()
			}
		}
	}
	return out
}
