package obs

import (
	"sync"
	"time"
)

// RequestRecord is one entry in a RequestRing: the summary of a finished
// HTTP request, in the spirit of x/net/trace's per-request event log but
// bounded and dependency-free.
type RequestRecord struct {
	ID          string        `json:"id"`
	Method      string        `json:"method"`
	Path        string        `json:"path"`
	Status      int           `json:"status"`
	Start       time.Time     `json:"start"`
	Duration    time.Duration `json:"durationNs"`
	Traceparent string        `json:"traceparent,omitempty"`
	Detail      string        `json:"detail,omitempty"`
}

// RequestRing is a bounded, newest-wins ring of recent request records.
// Like the rest of obs it is nil-safe — every method on a nil *RequestRing
// is a no-op — and lock-cheap: Add is one short critical section copying a
// small struct, no allocation once the ring is warm.
type RequestRing struct {
	mu   sync.Mutex
	recs []RequestRecord
	next int // index the next Add writes
	full bool
}

// NewRequestRing returns a ring holding the last n records (n < 1 is
// clamped to 1).
func NewRequestRing(n int) *RequestRing {
	if n < 1 {
		n = 1
	}
	return &RequestRing{recs: make([]RequestRecord, n)}
}

// Add records one request, evicting the oldest when full. No-op on nil.
func (r *RequestRing) Add(rec RequestRecord) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.recs[r.next] = rec
	r.next++
	if r.next == len(r.recs) {
		r.next = 0
		r.full = true
	}
	r.mu.Unlock()
}

// Len returns the number of records held (0 on nil).
func (r *RequestRing) Len() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.full {
		return len(r.recs)
	}
	return r.next
}

// Cap returns the ring's capacity (0 on nil).
func (r *RequestRing) Cap() int {
	if r == nil {
		return 0
	}
	return len(r.recs)
}

// Snapshot returns the held records newest-first (nil on a nil ring).
func (r *RequestRing) Snapshot() []RequestRecord {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	n := r.next
	if r.full {
		n = len(r.recs)
	}
	out := make([]RequestRecord, 0, n)
	for i := 0; i < n; i++ {
		// Walk backwards from the slot before next, wrapping.
		idx := (r.next - 1 - i + len(r.recs)) % len(r.recs)
		out = append(out, r.recs[idx])
	}
	return out
}
