# redrace-go — build/test/bench entry points.

GO ?= go

.PHONY: all build test race vet fuzz chaos bench tables sweep parallel elide obs coverage-demo serve clean

all: build test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test: vet
	$(GO) test ./...

# Full suite under the Go race detector (exercises the parallel runtime
# and the lock-free deques).
race:
	$(GO) test -race ./...

# Short fuzzing passes over every fuzz target.
fuzz:
	$(GO) test -fuzz FuzzParse -fuzztime 15s ./internal/sched/
	$(GO) test -fuzz FuzzDedupDecode -fuzztime 15s ./internal/apps/
	$(GO) test -fuzz FuzzDedupRoundTrip -fuzztime 15s ./internal/apps/
	$(GO) test -fuzz FuzzReplay -fuzztime 15s ./internal/trace/
	$(GO) test -fuzz FuzzStoreRecovery -fuzztime 15s ./internal/store/
	$(GO) test -fuzz FuzzVerdictDecode -fuzztime 15s ./internal/store/
	$(GO) test -fuzz FuzzDepaOracle -fuzztime 15s ./internal/depa/
	$(GO) test -fuzz FuzzElide -fuzztime 15s ./internal/elide/

# The crash-recovery chaos suite: kill the store at every fault-injection
# point, reopen, and assert byte-identical verdicts (docs/ROBUSTNESS.md,
# "The durable store"). Plus the service-level durability/drain tests.
chaos:
	$(GO) test -race -count=1 ./internal/store/
	$(GO) test -race -count=1 -run 'Restart|Drain|Recover|Journal|Ingest|Resumable' ./internal/service/ ./cmd/raderd/ ./cmd/rader/

# The observability layer under the race detector: obs core (spans,
# metrics, progress, request ring), the traced service surfaces, and the
# distributed-tracing client paths (docs/OBSERVABILITY.md).
obs:
	$(GO) test -race -count=1 ./internal/obs/ ./internal/service/
	$(GO) test -race -count=1 -run 'Trace|Profile|Progress|Stream|Events' ./cmd/rader/

# The testing.B suite: Figure 7/8 cells, theorem scaling, ablations.
bench:
	$(GO) test -bench . -benchmem .

# Regenerate the paper's evaluation tables at full scale.
tables:
	$(GO) run ./cmd/benchtab -q

# The work-stealing sweep suite under the race detector (scheduler,
# deques, snapshot handoff, sampling, equivalence), then the sweep
# throughput table with the critical-path section (docs/SWEEP.md).
sweep:
	$(GO) test -race -count=1 -run 'Sweep|Steal|Deque|Handoff|Sample' ./internal/rader/ ./internal/specgen/ ./internal/tables/
	$(GO) run ./cmd/benchtab -table sweep -q

# The depa parallel-detection scaling table (docs/PARALLEL.md).
parallel:
	$(GO) run ./cmd/benchtab -table parallel -q

# The static-elision shrink/parity table (docs/ELISION.md).
elide:
	$(GO) run ./cmd/benchtab -table elide -q

# The §7 coverage sweep finding the Figure 1 race.
coverage-demo:
	$(GO) run ./cmd/rader -prog fig1 -coverage || true

# Run the analysis daemon in the foreground (docs/SERVICE.md).
serve:
	$(GO) run ./cmd/raderd

clean:
	$(GO) clean ./...
