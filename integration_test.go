package repro

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// buildCmds compiles the three command-line tools once per test binary.
func buildCmds(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	for _, name := range []string{"rader", "benchtab", "stealgen"} {
		out := filepath.Join(dir, name)
		cmd := exec.Command("go", "build", "-o", out, "./cmd/"+name)
		cmd.Env = os.Environ()
		if b, err := cmd.CombinedOutput(); err != nil {
			t.Fatalf("build %s: %v\n%s", name, err, b)
		}
	}
	return dir
}

func runCmd(t *testing.T, bin string, wantExit int, args ...string) string {
	t.Helper()
	cmd := exec.Command(bin, args...)
	out, err := cmd.CombinedOutput()
	exit := 0
	if ee, ok := err.(*exec.ExitError); ok {
		exit = ee.ExitCode()
	} else if err != nil {
		t.Fatalf("%s %v: %v\n%s", bin, args, err, out)
	}
	if exit != wantExit {
		t.Fatalf("%s %v: exit %d, want %d\n%s", bin, args, exit, wantExit, out)
	}
	return string(out)
}

func TestCLIs(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries")
	}
	dir := buildCmds(t)
	rader := filepath.Join(dir, "rader")
	benchtab := filepath.Join(dir, "benchtab")
	stealgen := filepath.Join(dir, "stealgen")

	t.Run("rader-clean", func(t *testing.T) {
		out := runCmd(t, rader, 0, "-prog", "fib", "-scale", "test", "-detector", "sp+", "-spec", "all", "-v")
		for _, want := range []string{"no races detected", "verify: ok", "disjoint-set:"} {
			if !strings.Contains(out, want) {
				t.Fatalf("missing %q in:\n%s", want, out)
			}
		}
	})
	t.Run("rader-racy-exits-1", func(t *testing.T) {
		out := runCmd(t, rader, 1, "-prog", "fig1", "-detector", "sp+", "-spec", "all")
		if !strings.Contains(out, "determinacy race") || !strings.Contains(out, "replay with:") {
			t.Fatalf("race output malformed:\n%s", out)
		}
	})
	t.Run("rader-replay", func(t *testing.T) {
		out := runCmd(t, rader, 1, "-prog", "fig1", "-detector", "sp+", "-spec", "all")
		var label string
		for _, line := range strings.Split(out, "\n") {
			if strings.HasPrefix(line, "replay with: -spec '") {
				label = strings.TrimSuffix(strings.TrimPrefix(line, "replay with: -spec '"), "'")
			}
		}
		if label == "" {
			t.Fatalf("no replay label in:\n%s", out)
		}
		again := runCmd(t, rader, 1, "-prog", "fig1", "-detector", "sp+", "-spec", label)
		if !strings.Contains(again, "determinacy race") {
			t.Fatalf("replay did not reproduce:\n%s", again)
		}
	})
	t.Run("rader-coverage", func(t *testing.T) {
		out := runCmd(t, rader, 1, "-prog", "fig1", "-coverage")
		if !strings.Contains(out, "determinacy: 1 distinct race(s)") {
			t.Fatalf("coverage output:\n%s", out)
		}
		clean := runCmd(t, rader, 0, "-prog", "fig1-fixed", "-coverage")
		if !strings.Contains(clean, "no races under any specification") {
			t.Fatalf("clean coverage output:\n%s", clean)
		}
	})
	t.Run("rader-peer-set", func(t *testing.T) {
		out := runCmd(t, rader, 1, "-prog", "fig2", "-reads", "1,9", "-detector", "peer-set")
		if !strings.Contains(out, "view-read race") {
			t.Fatalf("view-read output:\n%s", out)
		}
		runCmd(t, rader, 0, "-prog", "fig2", "-reads", "5,9", "-detector", "peer-set")
	})
	t.Run("rader-offset-span", func(t *testing.T) {
		runCmd(t, rader, 0, "-prog", "fib", "-scale", "test", "-detector", "offset-span")
	})
	t.Run("rader-dot", func(t *testing.T) {
		out := runCmd(t, rader, 0, "-prog", "fig2", "-dot")
		if !strings.Contains(out, "digraph") {
			t.Fatalf("dot output:\n%s", out)
		}
	})
	t.Run("rader-trace-roundtrip", func(t *testing.T) {
		tr := filepath.Join(dir, "fig1.trace")
		out := runCmd(t, rader, 0, "-prog", "fig1", "-spec", "all", "-record", tr)
		if !strings.Contains(out, "trace recorded") {
			t.Fatalf("record output:\n%s", out)
		}
		rep := runCmd(t, rader, 1, "-replay", tr, "-detector", "sp+")
		if !strings.Contains(rep, "determinacy race") || !strings.Contains(rep, "replayed") {
			t.Fatalf("replay output:\n%s", rep)
		}
	})
	t.Run("rader-bad-flags", func(t *testing.T) {
		runCmd(t, rader, 2, "-prog", "nope")
		runCmd(t, rader, 2, "-prog", "fib", "-detector", "tsan")
		runCmd(t, rader, 2, "-prog", "fib", "-spec", "bogus")
	})
	t.Run("benchtab", func(t *testing.T) {
		out := runCmd(t, benchtab, 0, "-q", "-scale", "test", "-trials", "1", "-apps", "ferret", "-table", "7")
		for _, want := range []string{"=== Figure 7 ===", "ferret", "(paper)", "headline geomeans"} {
			if !strings.Contains(out, want) {
				t.Fatalf("missing %q:\n%s", want, out)
			}
		}
	})
	t.Run("stealgen", func(t *testing.T) {
		out := runCmd(t, stealgen, 0, "-prog", "knapsack", "-scale", "test", "-list")
		for _, want := range []string{"max sync block K=", "Theorem 6", "Theorem 7", "single:1"} {
			if !strings.Contains(out, want) {
				t.Fatalf("missing %q:\n%s", want, out)
			}
		}
	})
	t.Run("rader-json", func(t *testing.T) {
		out := runCmd(t, rader, 1, "-prog", "fig1", "-spec", "all", "-json")
		if !strings.Contains(out, `"kind":"determinacy race"`) || !strings.Contains(out, `"viewAware":true`) {
			t.Fatalf("json output:\n%s", out)
		}
	})
	t.Run("benchtab-csv", func(t *testing.T) {
		out := runCmd(t, benchtab, 0, "-q", "-csv", "-scale", "test", "-trials", "1", "-apps", "fib", "-table", "7")
		if !strings.HasPrefix(out, "benchmark,input,baseline_ns") || !strings.Contains(out, "fib,") {
			t.Fatalf("csv output:\n%s", out)
		}
	})
}

// TestExamples builds and runs every example binary, asserting the stable
// lines of their output so the walkthroughs cannot rot.
func TestExamples(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries")
	}
	cases := []struct {
		name  string
		wants []string
	}{
		{"quickstart", []string{"sum = 499500", "view-read race", "sp+ with steals"}},
		{"listrace", []string{"sp+ under steal-all", "replayed:", "clean=true across"}},
		{"viewread", []string{"VIEW-READ RACE", "safe (same peer set)"}},
		{"coverage", []string{"FOUND by", "One schedule is not enough"}},
		{"determinism", []string{"pbfs", "NOT ostensibly deterministic", "opadd reducer"}},
		{"pbfs", []string{"levels identical to serial BFS", "steal everything"}},
	}
	dir := t.TempDir()
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			bin := filepath.Join(dir, tc.name)
			if b, err := exec.Command("go", "build", "-o", bin, "./examples/"+tc.name).CombinedOutput(); err != nil {
				t.Fatalf("build: %v\n%s", err, b)
			}
			out, err := exec.Command(bin).CombinedOutput()
			if err != nil {
				t.Fatalf("run: %v\n%s", err, out)
			}
			for _, want := range tc.wants {
				if !strings.Contains(string(out), want) {
					t.Fatalf("missing %q in:\n%s", want, out)
				}
			}
		})
	}
}
